package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"regsim/internal/exper"
	"regsim/internal/server"
)

// testBudget keeps cluster-level simulations fast; routing behaviour is
// budget-independent (but the router's DefaultBudget must match the workers'
// suite budget, exactly as in production, or routing keys diverge from cache
// keys).
const testBudget = 3_000

// testWorker is one in-process regsimd stand-in: a real server.Server over a
// fresh suite behind an httptest listener, optionally wrapped (fault
// injection).
type testWorker struct {
	srv *server.Server
	ts  *httptest.Server
}

func (w *testWorker) url() string { return w.ts.URL }

func newTestWorker(t *testing.T, wrap func(http.Handler) http.Handler) *testWorker {
	t.Helper()
	suite := exper.NewSuite(testBudget)
	suite.Jobs = 2
	srv, err := server.New(server.Config{Suite: suite})
	if err != nil {
		t.Fatal(err)
	}
	h := http.Handler(srv.Handler())
	if wrap != nil {
		h = wrap(h)
	}
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	return &testWorker{srv: srv, ts: ts}
}

// newTestRouter builds a router over the given worker URLs with background
// probing disabled (tests drive ProbeAll directly) and serves it from an
// httptest listener.
func newTestRouter(t *testing.T, workers []string, mutate func(*Config)) (*Router, *httptest.Server) {
	t.Helper()
	cfg := Config{
		Workers:       workers,
		DefaultBudget: testBudget,
		ProbeInterval: -1,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(ts.Close)
	return rt, ts
}

// regsFamily returns n valid distinct specs (regs varies, bench fixed) for
// routing tests that need a spread of fingerprints.
func regsFamily(n int) []exper.Spec {
	specs := make([]exper.Spec, n)
	for i := range specs {
		specs[i] = exper.Spec{Bench: "compress", Regs: 40 + 8*i}
	}
	return specs
}

// specsPreferring partitions a candidate spec family by which worker heads
// its preference order, returning wantEach specs per worker. Worker
// identities are httptest URLs (random ports), so tests that need "a spec
// that routes to THIS worker" must compute the split rather than assume it.
func specsPreferring(t *testing.T, rt *Router, family []exper.Spec, wantEach int) map[string][]exper.Spec {
	t.Helper()
	out := make(map[string][]exper.Spec)
	for _, raw := range family {
		spec, key := rt.finishSpec(raw)
		head := rankByHRW(rt.pool.workers(), key)[0].name
		if len(out[head]) < wantEach {
			out[head] = append(out[head], spec)
		}
	}
	for _, w := range rt.pool.workers() {
		if len(out[w.name]) < wantEach {
			t.Fatalf("spec family of %d too small to give %s %d preferring specs", len(family), w.name, wantEach)
		}
	}
	return out
}

// postJSON fires one raw JSON POST and returns status and body bytes (raw,
// for byte-identity comparisons).
func postJSON(t *testing.T, url string, body any) (int, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw
}

// sweepResults extracts the raw "results" array from a sweep response body.
func sweepResults(t *testing.T, body []byte) string {
	t.Helper()
	var envelope struct {
		Count   int             `json:"count"`
		Results json.RawMessage `json:"results"`
	}
	if err := json.Unmarshal(body, &envelope); err != nil {
		t.Fatalf("sweep response: %v\n%s", err, body)
	}
	return string(envelope.Results)
}

// TestAffinityRoutesRepeatsToOneWorker: the tentpole property in miniature —
// the same spec simulated twice through the router must execute exactly once
// across the whole pool, because both requests land on the same worker and
// the second is a memo hit.
func TestAffinityRoutesRepeatsToOneWorker(t *testing.T) {
	w1 := newTestWorker(t, nil)
	w2 := newTestWorker(t, nil)
	_, ts := newTestRouter(t, []string{w1.url(), w2.url()}, nil)

	client := server.NewClient(ts.URL)
	spec := exper.Spec{Bench: "compress"}
	first, err := client.Simulate(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	second, err := client.Simulate(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	runs := w1.srv.Suite().SweepStats().Runs + w2.srv.Suite().SweepStats().Runs
	if runs != 1 {
		t.Fatalf("two identical simulates through the router ran %d simulations, want 1", runs)
	}
	a, _ := json.Marshal(first.Result)
	b, _ := json.Marshal(second.Result)
	if !bytes.Equal(a, b) {
		t.Fatalf("repeat simulate disagreed:\n%s\n%s", a, b)
	}
}

// TestSweepMergesInRequestOrder: a routed sweep's results must be
// byte-identical to a single-node run of the same matrix — sharding and
// merging is invisible in the response.
func TestSweepMergesInRequestOrder(t *testing.T) {
	w1 := newTestWorker(t, nil)
	w2 := newTestWorker(t, nil)
	_, ts := newTestRouter(t, []string{w1.url(), w2.url()}, nil)
	single := newTestWorker(t, nil)

	specs := regsFamily(6)
	req := server.SweepRequest{Specs: specs}
	status, routed := postJSON(t, ts.URL+"/v1/sweep", req)
	if status != http.StatusOK {
		t.Fatalf("routed sweep: HTTP %d\n%s", status, routed)
	}
	status, direct := postJSON(t, single.url()+"/v1/sweep", req)
	if status != http.StatusOK {
		t.Fatalf("direct sweep: HTTP %d\n%s", status, direct)
	}
	if got, want := sweepResults(t, routed), sweepResults(t, direct); got != want {
		t.Fatalf("routed sweep results differ from single-node run:\nrouted:  %.300s\ndirect:  %.300s", got, want)
	}
	runs := w1.srv.Suite().SweepStats().Runs + w2.srv.Suite().SweepStats().Runs
	if runs != int64(len(specs)) {
		t.Fatalf("pool executed %d simulations for %d distinct specs", runs, len(specs))
	}
}

// TestKillWorkerMidSweepReroutes is the failover acceptance test: a worker
// that dies when the sweep traffic reaches it must not fail the sweep — its
// shard re-routes to the survivor and the merged response is byte-identical
// to a single-node run.
func TestKillWorkerMidSweepReroutes(t *testing.T) {
	// w1 drops dead the moment sweep traffic arrives: the first POST
	// /v1/sweep (and everything after it) hijacks the connection and slams
	// it shut — the client sees a transport error, exactly like a SIGKILL.
	var dead atomic.Bool
	kill := func(h http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/v1/sweep" {
				dead.Store(true)
			}
			if dead.Load() {
				if hj, ok := w.(http.Hijacker); ok {
					if conn, _, err := hj.Hijack(); err == nil {
						conn.Close()
					}
				}
				return
			}
			h.ServeHTTP(w, r)
		})
	}
	w1 := newTestWorker(t, kill)
	w2 := newTestWorker(t, nil)
	rt, ts := newTestRouter(t, []string{w1.url(), w2.url()}, nil)
	single := newTestWorker(t, nil)

	// Build a matrix guaranteed to shard onto both workers, so the doomed
	// worker definitely receives (and kills) its shard.
	split := specsPreferring(t, rt, regsFamily(40), 3)
	var specs []exper.Spec
	for _, w := range rt.pool.workers() {
		specs = append(specs, split[w.name]...)
	}
	req := server.SweepRequest{Specs: specs}

	status, routed := postJSON(t, ts.URL+"/v1/sweep", req)
	if status != http.StatusOK {
		t.Fatalf("sweep with a dying worker: HTTP %d\n%s", status, routed)
	}
	if !dead.Load() {
		t.Fatal("the doomed worker never saw sweep traffic; the test routed nothing at it")
	}
	if rt.reroutes.Load() == 0 {
		t.Fatal("sweep completed without a reroute despite a dead worker")
	}
	status, direct := postJSON(t, single.url()+"/v1/sweep", req)
	if status != http.StatusOK {
		t.Fatalf("single-node sweep: HTTP %d\n%s", status, direct)
	}
	if got, want := sweepResults(t, routed), sweepResults(t, direct); got != want {
		t.Fatalf("post-failover results differ from single-node run:\nrouted: %.300s\ndirect: %.300s", got, want)
	}
	// The survivor executed everything; the corpse's failure is on the
	// books.
	if runs := w2.srv.Suite().SweepStats().Runs; runs != int64(len(specs)) {
		t.Errorf("survivor ran %d of %d specs", runs, len(specs))
	}
	for _, ws := range rt.Workers() {
		if ws.Name == w1.url() && ws.Failures == 0 {
			t.Errorf("dead worker shows no failures: %+v", ws)
		}
	}
}

// TestAffinityBeatsRoundRobinWarmHits is the cache-affinity acceptance test:
// replaying the same workload through a fingerprint-routed pool must produce
// strictly more warm (memo) hits than through a round-robin-routed pool —
// the measured form of the paper's "route to where the state already is".
func TestAffinityBeatsRoundRobinWarmHits(t *testing.T) {
	// An odd spec count makes the round-robin cursor flip every spec to the
	// other worker on the replay, so the baseline's warm-hit rate collapses
	// rather than riding luck.
	specs := regsFamily(5)
	run := func(policy Policy) (memoHits, runs int64) {
		w1 := newTestWorker(t, nil)
		w2 := newTestWorker(t, nil)
		_, ts := newTestRouter(t, []string{w1.url(), w2.url()}, func(cfg *Config) {
			cfg.Policy = policy
		})
		client := server.NewClient(ts.URL)
		for pass := 0; pass < 2; pass++ {
			if _, err := client.Sweep(context.Background(), specs); err != nil {
				t.Fatalf("%s pass %d: %v", policy, pass, err)
			}
		}
		s1, s2 := w1.srv.Suite().SweepStats(), w2.srv.Suite().SweepStats()
		return s1.MemoHits + s2.MemoHits, s1.Runs + s2.Runs
	}
	affinityHits, affinityRuns := run(PolicyAffinity)
	rrHits, rrRuns := run(PolicyRoundRobin)
	if affinityHits <= rrHits {
		t.Fatalf("affinity warm hits %d not strictly above round-robin %d", affinityHits, rrHits)
	}
	// Affinity replays entirely warm: every spec simulated once, pool-wide.
	if affinityHits != int64(len(specs)) || affinityRuns != int64(len(specs)) {
		t.Errorf("affinity: %d hits / %d runs, want %d / %d", affinityHits, affinityRuns, len(specs), len(specs))
	}
	if rrRuns <= affinityRuns {
		t.Errorf("round-robin ran %d simulations, expected more than affinity's %d (cold repeats)", rrRuns, affinityRuns)
	}
}

// TestSaturationSpillover: a fresh load snapshot at/above the threshold must
// push the preferred worker behind the alternative; with everything
// saturated the preference order comes back (spilling everywhere is spilling
// nowhere).
func TestSaturationSpillover(t *testing.T) {
	rt, err := New(Config{
		Workers:       []string{"http://worker-a:8265", "http://worker-b:8265"},
		ProbeInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	key := "feedfacefeedface"
	ranked := rankByHRW(rt.pool.workers(), key)

	order, spilled := rt.pick(key, nil)
	if spilled || order[0] != ranked[0] {
		t.Fatalf("unloaded pool must follow preference order (spilled=%v)", spilled)
	}

	full := &server.LoadResponse{
		Status: "ok", Capacity: 10,
		Admission: server.AdmissionStats{InFlight: 9, Waiting: 1},
	}
	ranked[0].noteLoad(full)
	order, spilled = rt.pick(key, nil)
	if !spilled || order[0] != ranked[1] {
		t.Fatalf("saturated primary not spilled past: head=%s spilled=%v", order[0].name, spilled)
	}
	if rt.cfg.Policy != PolicyAffinity {
		t.Fatal("default policy must be affinity")
	}

	ranked[1].noteLoad(full)
	order, spilled = rt.pick(key, nil)
	if spilled || order[0] != ranked[0] {
		t.Fatalf("uniformly saturated pool must fall back to preference order: head=%s spilled=%v", order[0].name, spilled)
	}

	// A draining worker sinks below a merely saturated one.
	ranked[0].noteLoad(&server.LoadResponse{Status: "draining", Draining: true, Capacity: 10})
	order, _ = rt.pick(key, nil)
	if order[0] != ranked[1] {
		t.Fatalf("draining worker outranked a live one: head=%s", order[0].name)
	}
}

// TestRerouteOn429: a worker refusing with 429 is routed past (and NOT
// counted toward its death — it answered, it is alive), and the request
// succeeds on the spillover target.
func TestRerouteOn429(t *testing.T) {
	refusals := atomic.Int64{}
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		refusals.Add(1)
		server.WriteError(w, &server.APIError{
			Status: http.StatusTooManyRequests, Code: server.CodeOverloaded,
			Message: "stub full", RetryAfterSeconds: 1,
		})
	}))
	defer stub.Close()
	real := newTestWorker(t, nil)
	rt, ts := newTestRouter(t, []string{stub.URL, real.url()}, nil)

	// Pick a spec whose preference order leads with the stub, so the 429 is
	// actually on the routed path.
	split := specsPreferring(t, rt, regsFamily(40), 1)
	spec := split[rt.pool.get(normalizedURL(t, stub.URL)).name][0]

	client := server.NewClient(ts.URL)
	resp, err := client.Simulate(context.Background(), spec)
	if err != nil {
		t.Fatalf("simulate with a refusing primary: %v", err)
	}
	if resp.Result == nil {
		t.Fatal("no result from the spillover target")
	}
	if refusals.Load() == 0 {
		t.Fatal("stub never refused; the spec did not prefer it")
	}
	if rt.reroutes.Load() == 0 {
		t.Fatal("429 did not count as a reroute")
	}
	if st := rt.pool.get(normalizedURL(t, stub.URL)).getState(); st == stateDead {
		t.Fatalf("a refusing (alive) worker was declared dead")
	}
}

func normalizedURL(t *testing.T, raw string) string {
	t.Helper()
	name, err := normalizeWorkerURL(raw)
	if err != nil {
		t.Fatal(err)
	}
	return name
}

// TestProberStateMachine: consecutive probe failures kill a worker, a
// success revives it, a draining snapshot degrades it — and /healthz tracks
// whether anything routable remains.
func TestProberStateMachine(t *testing.T) {
	var mode atomic.Int32 // 0 = ok, 1 = dead, 2 = draining
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch mode.Load() {
		case 1:
			if hj, ok := w.(http.Hijacker); ok {
				if conn, _, err := hj.Hijack(); err == nil {
					conn.Close()
				}
			}
		case 2:
			server.WriteJSON(w, http.StatusOK, server.LoadResponse{
				Status: "draining", Draining: true, Capacity: 8,
			})
		default:
			server.WriteJSON(w, http.StatusOK, server.LoadResponse{
				Status: "ok", Capacity: 8,
			})
		}
	}))
	defer stub.Close()
	rt, ts := newTestRouter(t, []string{stub.URL}, nil)
	wk := rt.pool.get(normalizedURL(t, stub.URL))

	rt.ProbeAll(context.Background())
	if st := wk.getState(); st != stateHealthy {
		t.Fatalf("after a good probe: state %v, want healthy", st)
	}

	mode.Store(1)
	for i := 0; i < rt.cfg.DeadAfter; i++ {
		rt.ProbeAll(context.Background())
	}
	if st := wk.getState(); st != stateDead {
		t.Fatalf("after %d failed probes: state %v, want dead", rt.cfg.DeadAfter, st)
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz with an all-dead pool: HTTP %d, want 503", resp.StatusCode)
	}

	mode.Store(0)
	rt.ProbeAll(context.Background())
	if st := wk.getState(); st != stateHealthy {
		t.Fatalf("after revival probe: state %v, want healthy", st)
	}

	mode.Store(2)
	rt.ProbeAll(context.Background())
	if st := wk.getState(); st != stateDegraded {
		t.Fatalf("after draining probe: state %v, want degraded", st)
	}
	if rt.probes.Load() < int64(rt.cfg.DeadAfter+3) || rt.probeFails.Load() != int64(rt.cfg.DeadAfter) {
		t.Errorf("probe counters: %d probes, %d failures", rt.probes.Load(), rt.probeFails.Load())
	}
}

// TestRegistration: a register-enabled router starts empty, refuses work
// with no_workers, accepts a worker announcement idempotently, and then
// routes.
func TestRegistration(t *testing.T) {
	w1 := newTestWorker(t, nil)
	rt, ts := newTestRouter(t, nil, func(cfg *Config) { cfg.AllowRegister = true })

	client := server.NewClient(ts.URL)
	_, err := client.Simulate(context.Background(), exper.Spec{Bench: "compress"})
	var apiErr *server.APIError
	if !errors.As(err, &apiErr) || apiErr.Code != CodeNoWorkers || apiErr.Status != http.StatusServiceUnavailable {
		t.Fatalf("empty pool: got %v, want 503 %s", err, CodeNoWorkers)
	}

	status, body := postJSON(t, ts.URL+"/v1/cluster/register", RegisterRequest{URL: w1.url()})
	if status != http.StatusOK {
		t.Fatalf("register: HTTP %d\n%s", status, body)
	}
	var reg RegisterResponse
	if err := json.Unmarshal(body, &reg); err != nil {
		t.Fatal(err)
	}
	if !reg.Added || reg.Worker.State != "healthy" {
		t.Fatalf("first registration: %+v, want added + healthy (synchronous probe)", reg)
	}

	status, body = postJSON(t, ts.URL+"/v1/cluster/register", RegisterRequest{URL: w1.url()})
	if status != http.StatusOK {
		t.Fatalf("re-register: HTTP %d\n%s", status, body)
	}
	if err := json.Unmarshal(body, &reg); err != nil {
		t.Fatal(err)
	}
	if reg.Added {
		t.Fatal("re-registration reported added=true; registration must be idempotent")
	}

	if _, err := client.Simulate(context.Background(), exper.Spec{Bench: "compress"}); err != nil {
		t.Fatalf("simulate after registration: %v", err)
	}
	if rt.pool.get(normalizedURL(t, w1.url())) == nil {
		t.Fatal("registered worker missing from the pool")
	}

	status, _ = postJSON(t, ts.URL+"/v1/cluster/register", RegisterRequest{URL: "not a url"})
	if status != http.StatusBadRequest {
		t.Fatalf("bad registration URL: HTTP %d, want 400", status)
	}
}

// TestValidationAtTheRouter: the router pre-validates with the worker rules,
// so errors come back immediately with caller-relative spec indices.
func TestValidationAtTheRouter(t *testing.T) {
	w1 := newTestWorker(t, nil)
	_, ts := newTestRouter(t, []string{w1.url()}, nil)

	status, body := postJSON(t, ts.URL+"/v1/simulate", exper.Spec{Bench: "no-such-bench"})
	if status != http.StatusBadRequest || !bytes.Contains(body, []byte("unknown_workload")) {
		t.Fatalf("unknown bench: HTTP %d\n%s", status, body)
	}

	status, body = postJSON(t, ts.URL+"/v1/sweep", server.SweepRequest{Specs: []exper.Spec{
		{Bench: "compress"},
		{Bench: "compress", Width: 3},
	}})
	if status != http.StatusBadRequest || !bytes.Contains(body, []byte(`"specs[1].width"`)) {
		t.Fatalf("sweep validation must carry the caller's index: HTTP %d\n%s", status, body)
	}
}

// TestProxyEndpoints: the pool-invariant read endpoints pass through
// byte-for-byte.
func TestProxyEndpoints(t *testing.T) {
	w1 := newTestWorker(t, nil)
	_, ts := newTestRouter(t, []string{w1.url()}, nil)
	for _, path := range []string{"/v1/workloads", "/v1/timing?width=8&regs=64,128"} {
		direct, err := http.Get(w1.url() + path)
		if err != nil {
			t.Fatal(err)
		}
		directBody, _ := io.ReadAll(direct.Body)
		direct.Body.Close()
		routed, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		routedBody, _ := io.ReadAll(routed.Body)
		routed.Body.Close()
		if routed.StatusCode != direct.StatusCode || !bytes.Equal(routedBody, directBody) {
			t.Fatalf("%s: routed (HTTP %d) differs from direct (HTTP %d)\n%.200s\n%.200s",
				path, routed.StatusCode, direct.StatusCode, routedBody, directBody)
		}
	}
}

// TestTraceAdoptionAtRouter: a caller-supplied X-Trace-Id becomes the
// router's trace (and therefore the one stamped on worker calls).
func TestTraceAdoptionAtRouter(t *testing.T) {
	w1 := newTestWorker(t, nil)
	_, ts := newTestRouter(t, []string{w1.url()}, nil)
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/cluster", nil)
	if err != nil {
		t.Fatal(err)
	}
	const id = "00000000feedface"
	req.Header.Set("X-Trace-Id", id)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("X-Trace-Id"); got != id {
		t.Fatalf("router minted %q instead of adopting %q", got, id)
	}
}

// TestRouterMetricsAndCluster: the observability surface reports the pool
// and the routing counters in both JSON and Prometheus form.
func TestRouterMetricsAndCluster(t *testing.T) {
	w1 := newTestWorker(t, nil)
	w2 := newTestWorker(t, nil)
	rt, ts := newTestRouter(t, []string{w1.url(), w2.url()}, nil)
	rt.ProbeAll(context.Background())
	client := server.NewClient(ts.URL)
	if _, err := client.Simulate(context.Background(), exper.Spec{Bench: "compress"}); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var cluster ClusterResponse
	if err := json.Unmarshal(body, &cluster); err != nil {
		t.Fatalf("cluster response: %v\n%s", err, body)
	}
	if cluster.Policy != string(PolicyAffinity) || len(cluster.Workers) != 2 {
		t.Fatalf("cluster snapshot: %+v", cluster)
	}
	for _, ws := range cluster.Workers {
		if ws.State != "healthy" {
			t.Errorf("worker %s state %s after probing live pool", ws.Name, ws.State)
		}
	}
	if cluster.Probes < 2 {
		t.Errorf("probe counter %d after ProbeAll over 2 workers", cluster.Probes)
	}

	resp, err = http.Get(ts.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	prom, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, family := range []string{
		"regsim_router_http_requests_total",
		"regsim_router_workers{state=\"healthy\"} 2",
		"regsim_router_worker_up",
		"regsim_router_spillovers_total",
		"regsim_router_probes_total",
	} {
		if !bytes.Contains(prom, []byte(family)) {
			t.Errorf("prometheus exposition missing %q", family)
		}
	}
}

// TestRouterDrain: a draining router refuses simulation work with the same
// contract as a draining worker, while /v1/cluster stays readable.
func TestRouterDrain(t *testing.T) {
	w1 := newTestWorker(t, nil)
	rt, ts := newTestRouter(t, []string{w1.url()}, nil)
	rt.Drain()

	client := server.NewClient(ts.URL)
	_, err := client.Simulate(context.Background(), exper.Spec{Bench: "compress"})
	var apiErr *server.APIError
	if !errors.As(err, &apiErr) || apiErr.Code != server.CodeDraining || apiErr.RetryAfterSeconds <= 0 {
		t.Fatalf("draining router: got %v, want 503 %s with a hint", err, server.CodeDraining)
	}
	resp, err := http.Get(ts.URL + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/cluster during drain: HTTP %d", resp.StatusCode)
	}
}

// TestRouterDeadlineMapping: an unreachable pool member and a fired deadline
// both come back with the worker-side error vocabulary.
func TestRouterDeadlineMapping(t *testing.T) {
	// A TCP black hole: a listener that accepts and never answers would be
	// ideal; an unroutable address errors fast, which is what the transport
	// failure path needs.
	_, ts := newTestRouter(t, []string{"http://127.0.0.1:1"}, nil)
	client := server.NewClient(ts.URL)
	_, err := client.Simulate(context.Background(), exper.Spec{Bench: "compress"})
	var apiErr *server.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadGateway || apiErr.Code != CodeUpstream {
		t.Fatalf("all-unreachable pool: got %v, want 502 %s", err, CodeUpstream)
	}

	// A sub-millisecond deadline against a real worker fires inside the
	// worker (or in the router's client); either way the caller sees the
	// deadline vocabulary, not a transport error.
	w1 := newTestWorker(t, nil)
	_, ts2 := newTestRouter(t, []string{w1.url()}, nil)
	status, body := postJSON(t, ts2.URL+"/v1/simulate?timeout=1ns", exper.Spec{Bench: "compress"})
	if status != http.StatusGatewayTimeout && status != 499 {
		t.Fatalf("1ns deadline: HTTP %d\n%s", status, body)
	}
}

// TestConfigValidation: bad configurations fail construction, not first
// request.
func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("no workers and no registration must be rejected")
	}
	if _, err := New(Config{Workers: []string{"ftp://x"}}); err == nil {
		t.Error("non-http worker URL must be rejected")
	}
	if _, err := New(Config{Workers: []string{"http://x:1"}, Policy: "random"}); err == nil {
		t.Error("unknown policy must be rejected")
	}
	if _, err := New(Config{
		Workers:        []string{"http://x:1"},
		DefaultTimeout: time.Minute, MaxTimeout: time.Second,
		ProbeInterval: -1,
	}); err == nil {
		t.Error("DefaultTimeout above MaxTimeout must be rejected")
	}
	rt, err := New(Config{Workers: []string{"http://x:1", "http://x:1/"}, ProbeInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if n := len(rt.pool.workers()); n != 1 {
		t.Errorf("duplicate worker URLs (modulo trailing slash) created %d pool entries, want 1", n)
	}
}
