package cluster

import (
	"regsim/internal/exper"
)

// finishSpec fills a request spec's omitted fields with the same baseline
// defaults the workers apply (4-wide, cost-effective queue, 80 registers,
// the configured commit budget), then returns its routing key: the spec
// fingerprint — the identical hex SHA-256 the workers' persistent result
// cache keys the entry by. Normalizing before hashing matters: "bench only"
// and "bench plus explicit defaults" must land on the same worker, or the
// affinity the router exists for evaporates on cosmetic spec differences.
func (rt *Router) finishSpec(spec exper.Spec) (exper.Spec, string) {
	if spec.Width == 0 {
		spec.Width = 4
	}
	if spec.Queue == 0 {
		spec.Queue = exper.CostEffectiveQueue(spec.Width)
	}
	if spec.Regs == 0 {
		spec.Regs = 80
	}
	if spec.Budget == 0 {
		spec.Budget = rt.cfg.DefaultBudget
	}
	return spec, exper.Fingerprint(spec)
}

// pick computes the attempt order for one routing key: the policy's
// preference order, re-partitioned so loaded and unhealthy workers sink —
// routable-and-fresh first, then saturated, then degraded (draining), then
// dead as a pure last resort (a "dead" worker may have just restarted, and
// trying it is how it revives when it is all that's left). Workers in
// excluded (they already failed this request) are dropped entirely.
//
// The second return value reports a spillover: the head of the final order
// is not the head of the raw preference order, i.e. the cache-affine
// primary was skipped because of load or health. Callers feed it to the
// spillover counter only when the skip actually redirected a request.
func (rt *Router) pick(key string, excluded map[string]bool) ([]*worker, bool) {
	all := rt.pool.workers()
	candidates := make([]*worker, 0, len(all))
	for _, w := range all {
		if !excluded[w.name] {
			candidates = append(candidates, w)
		}
	}
	if len(candidates) == 0 {
		return nil, false
	}
	var preferred []*worker
	if rt.cfg.Policy == PolicyRoundRobin {
		// Rotate the pool by a global counter: per-request balance with
		// zero regard for fingerprints (the measurement baseline).
		start := int(rt.rr.Add(1)-1) % len(candidates)
		preferred = make([]*worker, 0, len(candidates))
		for i := range candidates {
			preferred = append(preferred, candidates[(start+i)%len(candidates)])
		}
	} else {
		preferred = rankByHRW(candidates, key)
	}
	var fresh, loaded, degraded, dead []*worker
	for _, w := range preferred {
		switch {
		case w.getState() == stateDead:
			dead = append(dead, w)
		case w.getState() == stateDegraded:
			degraded = append(degraded, w)
		case w.saturated(rt.cfg.SpillThreshold, rt.cfg.LoadMaxAge):
			loaded = append(loaded, w)
		default:
			fresh = append(fresh, w)
		}
	}
	ordered := make([]*worker, 0, len(preferred))
	ordered = append(ordered, fresh...)
	ordered = append(ordered, loaded...)
	ordered = append(ordered, degraded...)
	ordered = append(ordered, dead...)
	spilled := ordered[0] != preferred[0]
	if n := rt.cfg.MaxAttempts; n > 0 && n < len(ordered) {
		ordered = ordered[:n]
	}
	return ordered, spilled
}
