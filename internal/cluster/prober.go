package cluster

import (
	"context"
	"sync"
	"time"
)

// proberLoop is the background health/saturation poller: every ProbeInterval
// it fetches each worker's GET /v1/load concurrently. The responses feed two
// consumers — the state machine (healthy/degraded/dead, so routing stops
// preferring nodes that stopped answering) and the spillover heuristic
// (queue depth and occupancy, so a saturated primary is skipped while the
// snapshot is fresh). New needs no warm-up round: unknown workers are
// routable, and real request outcomes update the same counters the probes
// do, so traffic itself keeps the picture current between ticks.
func (rt *Router) proberLoop() {
	defer close(rt.proberDone)
	ticker := time.NewTicker(rt.cfg.ProbeInterval)
	defer ticker.Stop()
	// Probe immediately on startup so a statically configured pool has load
	// snapshots before the first request, not one interval later.
	rt.ProbeAll(context.Background())
	for {
		select {
		case <-rt.stopProber:
			return
		case <-ticker.C:
			rt.ProbeAll(context.Background())
		}
	}
}

// ProbeAll probes every pool member once, concurrently, and returns when all
// probes finish. Exported so tests (and the router's registration handler)
// can force a probe round instead of waiting out the interval.
func (rt *Router) ProbeAll(ctx context.Context) {
	var wg sync.WaitGroup
	for _, w := range rt.pool.workers() {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			rt.probe(ctx, w)
		}(w)
	}
	wg.Wait()
}

// probe fetches one worker's load snapshot under the probe timeout.
func (rt *Router) probe(ctx context.Context, w *worker) {
	rt.probes.Add(1)
	ctx, cancel := context.WithTimeout(ctx, rt.cfg.ProbeTimeout)
	defer cancel()
	load, err := w.client.Load(ctx)
	if err != nil {
		rt.probeFails.Add(1)
		w.noteFailure(rt.cfg.DeadAfter, err)
		if rt.cfg.Logger != nil {
			rt.cfg.Logger.Warn("probe failed",
				"worker", w.name, "state", w.getState().String(), "error", err.Error())
		}
		return
	}
	w.noteLoad(load)
}
