package cluster

import (
	"math"
	"net/http"
	"time"

	"regsim/internal/server"
)

// Body bounds, matching the worker-side limits so the router never accepts
// a body a worker would refuse.
const (
	maxSimulateBody = 64 << 10
	maxRegisterBody = 4 << 10
	maxSweepBody    = 4 << 20
)

// ClusterResponse answers GET /v1/cluster: the routing policy, the pool with
// per-worker health and load, and the router's routing counters.
type ClusterResponse struct {
	Policy   string         `json:"policy"`
	Draining bool           `json:"draining"`
	Workers  []WorkerStatus `json:"workers"`

	// Spillovers counts requests redirected off their cache-affine primary
	// by load or health; Reroutes counts attempts moved past a worker that
	// failed or refused mid-request.
	Spillovers    int64   `json:"spillovers"`
	Reroutes      int64   `json:"reroutes"`
	Probes        int64   `json:"probes"`
	ProbeFailures int64   `json:"probeFailures"`
	UptimeSeconds float64 `json:"uptimeSeconds"`
}

// RegisterRequest is the body of POST /v1/cluster/register.
type RegisterRequest struct {
	// URL is the worker's base URL, e.g. "http://10.0.0.7:8265".
	URL string `json:"url"`
}

// RegisterResponse reports the outcome; Added is false when the worker was
// already in the pool (registration is idempotent, so workers can announce
// themselves on every startup).
type RegisterResponse struct {
	Added  bool         `json:"added"`
	Worker WorkerStatus `json:"worker"`
}

// MetricsResponse answers the router's GET /metrics (JSON form): the cluster
// snapshot plus per-endpoint serving statistics, mirroring the worker-side
// document shape.
type MetricsResponse struct {
	UptimeSeconds float64                           `json:"uptimeSeconds"`
	Draining      bool                              `json:"draining"`
	Policy        string                            `json:"policy"`
	Workers       []WorkerStatus                    `json:"workers"`
	Spillovers    int64                             `json:"spillovers"`
	Reroutes      int64                             `json:"reroutes"`
	Probes        int64                             `json:"probes"`
	ProbeFailures int64                             `json:"probeFailures"`
	Endpoints     map[string]server.EndpointMetrics `json:"endpoints"`
}

func (rt *Router) retryAfterSeconds() int {
	return int(math.Ceil(rt.cfg.RetryAfter.Seconds()))
}

// noWorkersError: the pool has no member to try at all.
func (rt *Router) noWorkersError() *server.APIError {
	return &server.APIError{
		Status: http.StatusServiceUnavailable, Code: CodeNoWorkers,
		Message:           "no workers available in the pool",
		RetryAfterSeconds: rt.retryAfterSeconds(),
	}
}

// exhaustedError summarizes a request that ran out of candidates: when any
// worker answered with a retryable refusal the cluster is overloaded (503,
// honouring the largest backoff hint any worker gave); when every attempt
// died on the transport it is an upstream failure (502).
func (rt *Router) exhaustedError(sawRefusal bool, refusalHint int, lastErr error) *server.APIError {
	if sawRefusal {
		hint := refusalHint
		if min := rt.retryAfterSeconds(); hint < min {
			hint = min
		}
		return &server.APIError{
			Status: http.StatusServiceUnavailable, Code: server.CodeOverloaded,
			Message:           "every worker refused the request (overloaded or draining); retry later",
			RetryAfterSeconds: hint,
		}
	}
	msg := "every worker failed"
	if lastErr != nil {
		msg += ": " + lastErr.Error()
	}
	return &server.APIError{
		Status: http.StatusBadGateway, Code: CodeUpstream,
		Message: msg,
	}
}

// elapsedMS matches the worker-side wall-time rounding (hundredths of a
// millisecond) so router and worker responses carry the same precision.
func elapsedMS(start time.Time) float64 {
	return math.Round(float64(time.Since(start).Microseconds())/10) / 100
}
