package cluster

import (
	"log"
	"net/http"
	"runtime/debug"
	"strconv"
	"sync"
	"time"

	"regsim/internal/obs"
	"regsim/internal/server"
	"regsim/internal/telemetry"
)

// endpointMetrics mirrors the worker-side per-route statistics (request
// count, responses per status, millisecond latency histogram) so the
// router's /metrics document has the same shape operators already read off
// a worker.
type endpointMetrics struct {
	mu       sync.Mutex
	requests int64
	byStatus map[string]int64
	latency  telemetry.Histogram
}

func (m *endpointMetrics) record(status int, elapsed time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.requests++
	if m.byStatus == nil {
		m.byStatus = make(map[string]int64)
	}
	m.byStatus[strconv.Itoa(status)]++
	m.latency.Record(elapsed.Milliseconds())
}

func (m *endpointMetrics) snapshot(includeBuckets bool) server.EndpointMetrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	by := make(map[string]int64, len(m.byStatus))
	for k, v := range m.byStatus {
		by[k] = v
	}
	stats := m.latency.Stats()
	if !includeBuckets {
		stats.Buckets = nil
	}
	return server.EndpointMetrics{Requests: m.requests, ByStatus: by, LatencyMS: stats}
}

// statusRecorder captures the response status and size.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (r *statusRecorder) WriteHeader(status int) {
	r.status = status
	r.ResponseWriter.WriteHeader(status)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	n, err := r.ResponseWriter.Write(p)
	r.bytes += int64(n)
	return n, err
}

// wrap is the router's middleware stack: root span (adopting an incoming
// X-Trace-Id, minting one otherwise — the same ID is then stamped on every
// upstream worker call, so one trace covers route → worker), panic-to-500
// recovery, per-endpoint metrics, and structured access logs.
func (rt *Router) wrap(pattern string, m *endpointMetrics, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		var inherited obs.TraceID
		if raw := r.Header.Get("X-Trace-Id"); raw != "" {
			if id, err := obs.ParseTraceID(raw); err == nil {
				inherited = id
			}
		}
		root, ctx := obs.StartTraceWithID(r.Context(), inherited, pattern)
		r = r.WithContext(ctx)
		w.Header().Set("X-Trace-Id", root.TraceID().String())
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		defer func() {
			if p := recover(); p != nil {
				log.Printf("cluster: panic in %s: %v\n%s", pattern, p, debug.Stack())
				if rec.bytes == 0 {
					server.WriteError(rec, &server.APIError{
						Status: http.StatusInternalServerError, Code: server.CodeInternal,
						Message: "internal error (panic recovered; see router log)",
					})
				}
			}
			root.Set("status", rec.status)
			root.End()
			elapsed := time.Since(start)
			m.record(rec.status, elapsed)
			rt.traces.Add(root.Snapshot())
			if rt.cfg.Logger != nil {
				rt.cfg.Logger.Info("request",
					"trace", root.TraceID().String(),
					"method", r.Method,
					"path", r.URL.RequestURI(),
					"status", rec.status,
					"bytes", rec.bytes,
					"elapsedMS", float64(elapsed.Microseconds())/1000,
					"remote", r.RemoteAddr,
				)
			}
		}()
		h(rec, r)
	})
}
