package cluster

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"testing"
)

// fakeWorkers builds n workers with stable names (no network).
func fakeWorkers(n int) []*worker {
	out := make([]*worker, n)
	for i := range out {
		out[i] = &worker{name: fmt.Sprintf("http://worker-%d:8265", i)}
	}
	return out
}

// fingerprintKeys builds count keys shaped like the real routing keys: hex
// SHA-256 digests.
func fingerprintKeys(count int) []string {
	out := make([]string, count)
	for i := range out {
		sum := sha256.Sum256([]byte(fmt.Sprintf("spec-%d", i)))
		out[i] = hex.EncodeToString(sum[:])
	}
	return out
}

// TestHRWDistributionSkew: rendezvous hashing must spread 1k fingerprints
// roughly evenly across pools of 3, 5, and 8 workers. The bound is loose
// (±40% of the fair share) — the point is "no worker starves or drowns",
// not perfect balance.
func TestHRWDistributionSkew(t *testing.T) {
	keys := fingerprintKeys(1000)
	for _, n := range []int{3, 5, 8} {
		workers := fakeWorkers(n)
		counts := make(map[string]int)
		for _, key := range keys {
			counts[rankByHRW(workers, key)[0].name]++
		}
		if len(counts) != n {
			t.Fatalf("%d workers: only %d ever ranked first", n, len(counts))
		}
		fair := float64(len(keys)) / float64(n)
		for name, c := range counts {
			if float64(c) < 0.6*fair || float64(c) > 1.4*fair {
				t.Errorf("%d workers: %s got %d of %d keys (fair share %.0f)", n, name, c, len(keys), fair)
			}
		}
	}
}

// TestHRWMinimalMovement: removing one worker must reassign exactly the keys
// that preferred it — every other key keeps its worker (the property that
// preserves warm caches across pool changes).
func TestHRWMinimalMovement(t *testing.T) {
	keys := fingerprintKeys(1000)
	workers := fakeWorkers(8)
	removed := workers[3]
	survivors := append(append([]*worker{}, workers[:3]...), workers[4:]...)

	moved := 0
	for _, key := range keys {
		before := rankByHRW(workers, key)[0]
		after := rankByHRW(survivors, key)[0]
		if before == removed {
			moved++
			// A displaced key must land on its second preference.
			if want := rankByHRW(workers, key)[1]; after != want {
				t.Fatalf("key displaced from %s landed on %s, want second preference %s",
					removed.name, after.name, want.name)
			}
			continue
		}
		if after != before {
			t.Fatalf("key not on the removed worker moved anyway: %s -> %s", before.name, after.name)
		}
	}
	// Expect ~1/8 of the keyspace; allow wide slack around 125.
	if moved < 60 || moved > 220 {
		t.Errorf("removing 1 of 8 workers moved %d of %d keys, want ~125", moved, len(keys))
	}
}

// TestHRWDeterministicOrder: the full preference order is a pure function of
// (pool, key) — the property that lets two router instances agree without
// coordination.
func TestHRWDeterministicOrder(t *testing.T) {
	workers := fakeWorkers(5)
	key := fingerprintKeys(1)[0]
	first := rankByHRW(workers, key)
	for i := 0; i < 10; i++ {
		again := rankByHRW(workers, key)
		for j := range first {
			if first[j] != again[j] {
				t.Fatalf("ranking not deterministic at position %d", j)
			}
		}
	}
	// The input slice order must not matter.
	reversed := make([]*worker, len(workers))
	for i, w := range workers {
		reversed[len(workers)-1-i] = w
	}
	fromReversed := rankByHRW(reversed, key)
	for j := range first {
		if first[j] != fromReversed[j] {
			t.Fatalf("ranking depends on input order at position %d", j)
		}
	}
}
