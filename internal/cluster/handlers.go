package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"regsim/internal/exper"
	"regsim/internal/obs"
	"regsim/internal/server"
)

// requestContext applies the per-request deadline, mirroring the worker-side
// rules (?timeout= override, clamped to MaxTimeout). The same duration is
// forwarded to workers as their ?timeout= hint, so router and worker agree
// on when the request is out of time.
func (rt *Router) requestContext(r *http.Request) (context.Context, context.CancelFunc, time.Duration, *server.APIError) {
	d := rt.cfg.DefaultTimeout
	if raw := r.URL.Query().Get("timeout"); raw != "" {
		parsed, err := time.ParseDuration(raw)
		if err != nil || parsed <= 0 {
			return nil, nil, 0, &server.APIError{
				Status: http.StatusBadRequest, Code: server.CodeInvalidArgument,
				Field:   "timeout",
				Message: fmt.Sprintf("timeout %q is not a positive Go duration (e.g. 500ms, 30s)", raw),
			}
		}
		d = parsed
	}
	if d > rt.cfg.MaxTimeout {
		d = rt.cfg.MaxTimeout
	}
	ctx, cancel := context.WithTimeout(r.Context(), d)
	return ctx, cancel, d, nil
}

// refuseIfDraining answers simulation endpoints during router drain, exactly
// like a draining worker would.
func (rt *Router) refuseIfDraining(w http.ResponseWriter) bool {
	if !rt.draining.Load() {
		return false
	}
	server.WriteError(w, &server.APIError{
		Status: http.StatusServiceUnavailable, Code: server.CodeDraining,
		Message:           "router is draining; retry against another instance",
		RetryAfterSeconds: rt.retryAfterSeconds(),
	})
	return true
}

// ctxError maps a fired request deadline/cancellation to its wire form
// (matching the worker-side mapping, so clients see one vocabulary).
func ctxError(ctx context.Context) *server.APIError {
	if errors.Is(ctx.Err(), context.DeadlineExceeded) {
		return &server.APIError{
			Status: http.StatusGatewayTimeout, Code: server.CodeDeadlineExceeded,
			Message: "request deadline exceeded before the cluster finished; raise ?timeout= or shrink the request",
		}
	}
	return &server.APIError{Status: 499, Code: server.CodeCanceled, Message: "request canceled by the client"}
}

// handleSimulate routes one spec: POST /v1/simulate. The spec is normalized
// and fingerprinted, the fingerprint's preference order computed, and the
// candidates tried in order until one answers — a worker that fails on the
// transport or refuses with 429/503 is routed past (reroute), a worker that
// answers a terminal error (validation, simulator failure) speaks for the
// cluster and its answer passes through unchanged.
func (rt *Router) handleSimulate(w http.ResponseWriter, r *http.Request) {
	if rt.refuseIfDraining(w) {
		return
	}
	var spec exper.Spec
	if apiErr := server.DecodeJSON(w, r, maxSimulateBody, &spec); apiErr != nil {
		server.WriteError(w, apiErr)
		return
	}
	spec, key := rt.finishSpec(spec)
	if apiErr := server.ValidateSpec(spec, rt.cfg.MaxBudget); apiErr != nil {
		server.WriteError(w, apiErr)
		return
	}
	ctx, cancel, timeout, apiErr := rt.requestContext(r)
	if apiErr != nil {
		server.WriteError(w, apiErr)
		return
	}
	defer cancel()

	candidates, spilled := rt.pick(key, nil)
	if len(candidates) == 0 {
		server.WriteError(w, rt.noWorkersError())
		return
	}
	if spilled {
		rt.spillovers.Add(1)
	}
	var (
		sawRefusal  bool
		refusalHint int
		lastErr     error
	)
	for i, wk := range candidates {
		if i > 0 {
			rt.reroutes.Add(1)
		}
		sp, spCtx := obs.StartSpan(ctx, "route")
		sp.Set("worker", wk.name)
		sp.Set("attempt", i+1)
		wk.requests.Add(1)
		resp, err := wk.client.WithTimeout(timeout).Simulate(spCtx, spec)
		if err == nil {
			sp.End()
			wk.noteSuccess()
			server.WriteJSON(w, http.StatusOK, resp)
			return
		}
		sp.Set("error", err.Error())
		sp.End()
		var upstream *server.APIError
		switch {
		case errors.As(err, &upstream) && upstream.IsRetryable():
			// The worker is alive but refusing (full queue, draining):
			// not a health failure, just not this worker right now.
			sawRefusal = true
			if upstream.RetryAfterSeconds > refusalHint {
				refusalHint = upstream.RetryAfterSeconds
			}
		case errors.As(err, &upstream):
			// A terminal answer (validation drift, simulator failure,
			// deadline inside the worker): retrying elsewhere would just
			// repeat it. Pass it through verbatim.
			server.WriteError(w, upstream)
			return
		default:
			// Transport-level death: count it toward the worker's demise
			// and move on.
			wk.noteFailure(rt.cfg.DeadAfter, err)
			lastErr = err
		}
		if ctx.Err() != nil {
			server.WriteError(w, ctxError(ctx))
			return
		}
	}
	server.WriteError(w, rt.exhaustedError(sawRefusal, refusalHint, lastErr))
}

// estimateKey is the routing key of an estimate request. Estimates are not
// keyed by the full spec fingerprint: the twin's expensive state is its
// per-(bench, width) calibration, shared by every spec on that pair, so
// routing all of a pair's estimates to one worker means the pool calibrates
// each pair once instead of everywhere — the same warm-concentration argument
// as result-cache affinity, one level up.
func estimateKey(spec exper.Spec) string {
	return fmt.Sprintf("twin/%s/w%d", spec.Bench, spec.Width)
}

// handleEstimate routes one estimate: POST /v1/estimate. The candidate walk
// mirrors handleSimulate — refusals and transport failures reroute, terminal
// answers speak for the cluster — only the routing key differs (calibration
// affinity instead of result-cache affinity).
func (rt *Router) handleEstimate(w http.ResponseWriter, r *http.Request) {
	if rt.refuseIfDraining(w) {
		return
	}
	var spec exper.Spec
	if apiErr := server.DecodeJSON(w, r, maxSimulateBody, &spec); apiErr != nil {
		server.WriteError(w, apiErr)
		return
	}
	spec, _ = rt.finishSpec(spec)
	if apiErr := server.ValidateSpec(spec, rt.cfg.MaxBudget); apiErr != nil {
		server.WriteError(w, apiErr)
		return
	}
	ctx, cancel, timeout, apiErr := rt.requestContext(r)
	if apiErr != nil {
		server.WriteError(w, apiErr)
		return
	}
	defer cancel()

	candidates, spilled := rt.pick(estimateKey(spec), nil)
	if len(candidates) == 0 {
		server.WriteError(w, rt.noWorkersError())
		return
	}
	if spilled {
		rt.spillovers.Add(1)
	}
	var (
		sawRefusal  bool
		refusalHint int
		lastErr     error
	)
	for i, wk := range candidates {
		if i > 0 {
			rt.reroutes.Add(1)
		}
		sp, spCtx := obs.StartSpan(ctx, "route")
		sp.Set("worker", wk.name)
		sp.Set("attempt", i+1)
		wk.requests.Add(1)
		resp, err := wk.client.WithTimeout(timeout).Estimate(spCtx, spec)
		if err == nil {
			sp.End()
			wk.noteSuccess()
			server.WriteJSON(w, http.StatusOK, resp)
			return
		}
		sp.Set("error", err.Error())
		sp.End()
		var upstream *server.APIError
		switch {
		case errors.As(err, &upstream) && upstream.IsRetryable():
			sawRefusal = true
			if upstream.RetryAfterSeconds > refusalHint {
				refusalHint = upstream.RetryAfterSeconds
			}
		case errors.As(err, &upstream):
			server.WriteError(w, upstream)
			return
		default:
			wk.noteFailure(rt.cfg.DeadAfter, err)
			lastErr = err
		}
		if ctx.Err() != nil {
			server.WriteError(w, ctxError(ctx))
			return
		}
	}
	server.WriteError(w, rt.exhaustedError(sawRefusal, refusalHint, lastErr))
}

// shard is one worker's portion of a sweep round: the original request
// indices it covers (the specs are re-read from the request array, so a
// rerouted shard carries identical specs to the first attempt).
type shard struct {
	worker  *worker
	indices []int
}

// shardOutcome is one shard attempt's result.
type shardOutcome struct {
	shard shard
	resp  *server.SweepResponse
	err   error
}

// handleSweep routes a spec matrix: POST /v1/sweep. The matrix is validated
// up front (so validation errors carry the caller's spec indices), then
// executed in rounds: each round groups the still-pending specs by their
// preferred worker, fires the shards concurrently (chunked at MaxShardSpecs
// per upstream request), merges successes into the response in request
// order, and excludes failed workers from the next round's grouping — a
// worker that dies mid-sweep just means its specs re-shard onto the
// survivors, and the completed sweep is byte-identical to a single-node run.
func (rt *Router) handleSweep(w http.ResponseWriter, r *http.Request) {
	if rt.refuseIfDraining(w) {
		return
	}
	start := time.Now()
	var req server.SweepRequest
	if apiErr := server.DecodeJSON(w, r, maxSweepBody, &req); apiErr != nil {
		server.WriteError(w, apiErr)
		return
	}
	if len(req.Specs) == 0 {
		server.WriteError(w, &server.APIError{
			Status: http.StatusBadRequest, Code: server.CodeInvalidArgument,
			Field: "specs", Message: "specs must name at least one simulation",
		})
		return
	}
	if len(req.Specs) > rt.cfg.MaxSweepSpecs {
		server.WriteError(w, &server.APIError{
			Status: http.StatusBadRequest, Code: server.CodeInvalidArgument,
			Field:   "specs",
			Message: fmt.Sprintf("sweep of %d specs exceeds the per-request limit %d; split the matrix", len(req.Specs), rt.cfg.MaxSweepSpecs),
		})
		return
	}
	specs := make([]exper.Spec, len(req.Specs))
	keys := make([]string, len(req.Specs))
	for i := range req.Specs {
		spec, key := rt.finishSpec(req.Specs[i])
		if apiErr := server.ValidateSpec(spec, rt.cfg.MaxBudget); apiErr != nil {
			apiErr.Field = fmt.Sprintf("specs[%d].%s", i, apiErr.Field)
			server.WriteError(w, apiErr)
			return
		}
		specs[i] = spec
		keys[i] = key
	}
	ctx, cancel, timeout, apiErr := rt.requestContext(r)
	if apiErr != nil {
		server.WriteError(w, apiErr)
		return
	}
	defer cancel()

	pending := make([]int, len(specs))
	for i := range pending {
		pending[i] = i
	}
	results := make([]server.SimulateResponse, len(specs))
	excluded := make(map[string]bool)
	var (
		sawRefusal  bool
		refusalHint int
		lastErr     error
	)
	// One clean pass plus one reroute round per pool member bounds the
	// loop; in practice a single worker death costs exactly one extra
	// round.
	maxRounds := len(rt.pool.workers()) + 1
	for round := 0; round < maxRounds && len(pending) > 0; round++ {
		shards := rt.shardSpecs(pending, keys, excluded)
		if len(shards) == 0 {
			if len(excluded) == 0 {
				break // pool is empty
			}
			// Everything usable has failed once; clear the exclusions and
			// let the remaining rounds give revived workers another try.
			excluded = make(map[string]bool)
			continue
		}
		outcomes := rt.runShards(ctx, shards, specs, timeout, round)
		pending = pending[:0]
		for _, out := range outcomes {
			if out.err == nil {
				out.shard.worker.noteSuccess()
				for j, idx := range out.shard.indices {
					results[idx] = out.resp.Results[j]
				}
				continue
			}
			var upstream *server.APIError
			switch {
			case errors.As(out.err, &upstream) && upstream.IsRetryable():
				sawRefusal = true
				if upstream.RetryAfterSeconds > refusalHint {
					refusalHint = upstream.RetryAfterSeconds
				}
			case errors.As(out.err, &upstream):
				upstream.Field = remapShardField(upstream.Field, out.shard.indices)
				server.WriteError(w, upstream)
				return
			default:
				out.shard.worker.noteFailure(rt.cfg.DeadAfter, out.err)
				lastErr = out.err
			}
			excluded[out.shard.worker.name] = true
			pending = append(pending, out.shard.indices...)
		}
		if len(pending) > 0 && ctx.Err() != nil {
			server.WriteError(w, ctxError(ctx))
			return
		}
	}
	if len(pending) > 0 {
		if len(rt.pool.workers()) == 0 {
			server.WriteError(w, rt.noWorkersError())
			return
		}
		server.WriteError(w, rt.exhaustedError(sawRefusal, refusalHint, lastErr))
		return
	}
	server.WriteJSON(w, http.StatusOK, server.SweepResponse{
		Count:     len(results),
		Results:   results,
		ElapsedMS: elapsedMS(start),
	})
}

// shardSpecs groups pending spec indices by each spec's preferred worker
// (head of its candidate order, excluding this sweep's failed workers) and
// chunks each group at MaxShardSpecs so no upstream request exceeds a
// worker's own sweep limit.
func (rt *Router) shardSpecs(pending []int, keys []string, excluded map[string]bool) []shard {
	groups := make(map[*worker][]int)
	var order []*worker // deterministic shard order for tests and logs
	for _, idx := range pending {
		candidates, spilled := rt.pick(keys[idx], excluded)
		if len(candidates) == 0 {
			return nil
		}
		if spilled {
			rt.spillovers.Add(1)
		}
		wk := candidates[0]
		if _, ok := groups[wk]; !ok {
			order = append(order, wk)
		}
		groups[wk] = append(groups[wk], idx)
	}
	var shards []shard
	for _, wk := range order {
		indices := groups[wk]
		for len(indices) > rt.cfg.MaxShardSpecs {
			shards = append(shards, shard{worker: wk, indices: indices[:rt.cfg.MaxShardSpecs]})
			indices = indices[rt.cfg.MaxShardSpecs:]
		}
		shards = append(shards, shard{worker: wk, indices: indices})
	}
	return shards
}

// runShards fires one round's shards concurrently and collects every
// outcome. Each shard is a span on the request trace carrying its worker
// and size, and the trace ID rides the upstream call's X-Trace-Id.
func (rt *Router) runShards(ctx context.Context, shards []shard, specs []exper.Spec, timeout time.Duration, round int) []shardOutcome {
	outcomes := make([]shardOutcome, len(shards))
	var wg sync.WaitGroup
	for i, sh := range shards {
		wg.Add(1)
		go func(i int, sh shard) {
			defer wg.Done()
			if round > 0 {
				rt.reroutes.Add(1)
			}
			sp, spCtx := obs.StartSpan(ctx, "shard")
			sp.Set("worker", sh.worker.name)
			sp.Set("specs", len(sh.indices))
			sp.Set("round", round)
			sub := make([]exper.Spec, len(sh.indices))
			for j, idx := range sh.indices {
				sub[j] = specs[idx]
			}
			sh.worker.requests.Add(1)
			resp, err := sh.worker.client.WithTimeout(timeout).Sweep(spCtx, sub)
			if err != nil {
				sp.Set("error", err.Error())
			}
			sp.End()
			if err == nil && len(resp.Results) != len(sh.indices) {
				err = fmt.Errorf("worker %s returned %d results for %d specs", sh.worker.name, len(resp.Results), len(sh.indices))
			}
			outcomes[i] = shardOutcome{shard: sh, resp: resp, err: err}
		}(i, sh)
	}
	wg.Wait()
	return outcomes
}

// remapShardField rewrites a worker's shard-relative "specs[j]..." field
// reference back to the caller's original spec index. Pre-validation makes
// these rare (the router applies the same rules first), but a worker with a
// different registry could still refuse a spec the router accepted.
func remapShardField(field string, indices []int) string {
	rest, ok := strings.CutPrefix(field, "specs[")
	if !ok {
		return field
	}
	num, rest, ok := strings.Cut(rest, "]")
	if !ok {
		return field
	}
	j, err := strconv.Atoi(num)
	if err != nil || j < 0 || j >= len(indices) {
		return field
	}
	return fmt.Sprintf("specs[%d]%s", indices[j], rest)
}

// handleProxy forwards a read-only endpoint (GET /v1/workloads, /v1/timing)
// to the first answering worker, byte-for-byte. These answers are
// pool-invariant (every worker runs the same registry and timing model), so
// any healthy worker speaks for the cluster.
func (rt *Router) handleProxy(w http.ResponseWriter, r *http.Request) {
	candidates, _ := rt.pick(r.URL.Path, nil)
	if len(candidates) == 0 {
		server.WriteError(w, rt.noWorkersError())
		return
	}
	var lastErr error
	for i, wk := range candidates {
		if i > 0 {
			rt.reroutes.Add(1)
		}
		req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, wk.name+r.URL.RequestURI(), nil)
		if err != nil {
			lastErr = err
			continue
		}
		if id := obs.TraceIDFromContext(r.Context()); id != 0 {
			req.Header.Set("X-Trace-Id", id.String())
		}
		wk.requests.Add(1)
		resp, err := rt.httpClient().Do(req)
		if err != nil {
			wk.noteFailure(rt.cfg.DeadAfter, err)
			lastErr = err
			continue
		}
		wk.noteSuccess()
		// Any HTTP answer — including a structured 4xx — is the cluster's
		// answer; only transport failures reroute.
		if ct := resp.Header.Get("Content-Type"); ct != "" {
			w.Header().Set("Content-Type", ct)
		}
		w.WriteHeader(resp.StatusCode)
		io.Copy(w, resp.Body) // connection loss mid-copy is unrecoverable anyway
		resp.Body.Close()
		return
	}
	server.WriteError(w, rt.exhaustedError(false, 0, lastErr))
}

// httpClient returns the raw-proxy transport (the configured override or the
// default client).
func (rt *Router) httpClient() *http.Client {
	if rt.cfg.HTTPClient != nil {
		return rt.cfg.HTTPClient
	}
	return http.DefaultClient
}

// handleCluster reports the pool: GET /v1/cluster.
func (rt *Router) handleCluster(w http.ResponseWriter, r *http.Request) {
	server.WriteJSON(w, http.StatusOK, ClusterResponse{
		Policy:        string(rt.cfg.Policy),
		Draining:      rt.draining.Load(),
		Workers:       rt.Workers(),
		Spillovers:    rt.spillovers.Load(),
		Reroutes:      rt.reroutes.Load(),
		Probes:        rt.probes.Load(),
		ProbeFailures: rt.probeFails.Load(),
		UptimeSeconds: time.Since(rt.start).Seconds(),
	})
}

// handleRegister adds a worker at runtime: POST /v1/cluster/register. The
// new member is probed synchronously so its first load snapshot exists
// before the response — a registering worker is routable the moment the 200
// lands.
func (rt *Router) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if apiErr := server.DecodeJSON(w, r, maxRegisterBody, &req); apiErr != nil {
		server.WriteError(w, apiErr)
		return
	}
	if req.URL == "" {
		server.WriteError(w, &server.APIError{
			Status: http.StatusBadRequest, Code: server.CodeInvalidArgument,
			Field: "url", Message: "url is required",
		})
		return
	}
	name, err := normalizeWorkerURL(req.URL)
	if err != nil {
		server.WriteError(w, &server.APIError{
			Status: http.StatusBadRequest, Code: server.CodeInvalidArgument,
			Field: "url", Message: err.Error(),
		})
		return
	}
	added, err := rt.Register(name)
	if err != nil {
		server.WriteError(w, &server.APIError{
			Status: http.StatusBadRequest, Code: server.CodeInvalidArgument,
			Field: "url", Message: err.Error(),
		})
		return
	}
	wk := rt.pool.get(name)
	rt.probe(r.Context(), wk)
	server.WriteJSON(w, http.StatusOK, RegisterResponse{Added: added, Worker: wk.status()})
}

// handleHealthz: GET /healthz. 200 while the router can route, 503 while
// draining or when the entire pool is dead (a router with no live workers is
// down as far as a load balancer should care).
func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if rt.draining.Load() {
		server.WriteJSON(w, http.StatusServiceUnavailable, server.HealthResponse{Status: "draining"})
		return
	}
	alive := 0
	for _, wk := range rt.pool.workers() {
		if wk.getState() != stateDead {
			alive++
		}
	}
	if alive == 0 {
		server.WriteJSON(w, http.StatusServiceUnavailable, server.HealthResponse{Status: "no_workers"})
		return
	}
	server.WriteJSON(w, http.StatusOK, server.HealthResponse{Status: "ok"})
}

// handleMetrics: GET /metrics. JSON by default, ?format=prometheus for the
// text exposition — the same contract as a worker, so one scrape config
// covers both tiers.
func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
	case "prometheus":
		w.Header().Set("Content-Type", obs.ContentType)
		rt.reg.WritePrometheus(w) // the connection is gone if this fails
		return
	default:
		server.WriteError(w, &server.APIError{
			Status: http.StatusBadRequest, Code: server.CodeInvalidArgument,
			Field:   "format",
			Message: fmt.Sprintf("unknown metrics format %q (want json or prometheus)", format),
		})
		return
	}
	resp := MetricsResponse{
		UptimeSeconds: time.Since(rt.start).Seconds(),
		Draining:      rt.draining.Load(),
		Policy:        string(rt.cfg.Policy),
		Workers:       rt.Workers(),
		Spillovers:    rt.spillovers.Load(),
		Reroutes:      rt.reroutes.Load(),
		Probes:        rt.probes.Load(),
		ProbeFailures: rt.probeFails.Load(),
		Endpoints:     make(map[string]server.EndpointMetrics, len(rt.metrics)),
	}
	for pattern, m := range rt.metrics {
		resp.Endpoints[pattern] = m.snapshot(false)
	}
	server.WriteJSON(w, http.StatusOK, resp)
}
