package regsim

// The benchmark harness: one testing.B benchmark per table and figure of the
// paper, each running the corresponding experiment end-to-end at a reduced
// commit budget, plus microbenchmarks of the simulator itself.
//
// Regenerate the full-budget tables and figures with:
//
//	go run ./cmd/paper -n 200000 all
//
// and the benchmark versions with:
//
//	go test -bench=. -benchmem

import (
	"testing"

	"regsim/internal/benchrun"
	"regsim/internal/exper"
)

// benchBudget keeps each harness iteration around a second on a laptop
// while still exercising every configuration of the experiment.
const benchBudget = benchrun.SuiteBudget

func reportIPC(b *testing.B, committed, cycles int64) {
	if cycles > 0 {
		b.ReportMetric(float64(committed)/float64(cycles), "IPC")
	}
}

// BenchmarkTable1 regenerates the dynamic-statistics table (18 runs). The
// body lives in internal/benchrun so cmd/bench records the same measurement.
func BenchmarkTable1(b *testing.B) { benchrun.Table1(benchBudget)(b) }

// BenchmarkFig3 regenerates the dispatch-queue sweep (108 measurement runs
// with live-register classification).
func BenchmarkFig3(b *testing.B) { benchrun.Fig3(benchBudget)(b) }

// BenchmarkCycleLoop measures the bare scheduler inner loop at each width ×
// dispatch-queue-size point (large register file, so queue occupancy — not
// register starvation — dominates). This is the microbenchmark that tracks
// the event-driven wakeup/select core: ns and allocations per simulated
// cycle by queue depth.
func BenchmarkCycleLoop(b *testing.B) {
	for _, c := range benchrun.CycleLoopCases() {
		b.Run(c.Name, c.Fn)
	}
}

// BenchmarkFig4 regenerates the averaged register-usage coverage curves.
func BenchmarkFig4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := exper.NewSuite(benchBudget)
		if _, err := s.Fig4(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5 regenerates the tomcatv case study.
func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := exper.NewSuite(benchBudget)
		if _, err := s.Fig5(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6 regenerates the register-file size sweep (288 runs).
func BenchmarkFig6(b *testing.B) { benchrun.Fig6(benchBudget)(b) }

// BenchmarkFig6Cold is the same sweep under a fresh checkpoint store each
// iteration: capture cost included, intra-sweep sharing on.
func BenchmarkFig6Cold(b *testing.B) { benchrun.Fig6Cold(benchBudget)(b) }

// BenchmarkFig6Checkpointed regenerates the sweep over a pre-populated
// checkpoint store — the steady-state rerun cost of a checkpointed sweep.
func BenchmarkFig6Checkpointed(b *testing.B) { benchrun.Fig6Checkpointed(benchBudget)(b) }

// BenchmarkFig7 regenerates the cache-organisation comparison (864 runs,
// sharing the lockup-free third with Figure 6 via memoisation).
func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := exper.NewSuite(benchBudget)
		if _, err := s.Fig7(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8 regenerates the compress cache case study.
func BenchmarkFig8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := exper.NewSuite(benchBudget)
		if _, err := s.Fig8(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig10 regenerates the timing/BIPS figure (the Figure 6 sweep plus
// the analytical timing model).
func BenchmarkFig10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := exper.NewSuite(benchBudget)
		if _, err := s.Fig10(nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblations runs the six design-assumption ablation studies
// (branch issue order, predictor components, MSHR counts, write-buffer
// bandwidth, insertion/commit bandwidth, fetch latency).
func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := exper.NewSuite(benchBudget)
		if _, err := s.RunAblations(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFindings regenerates the paper's §4 conclusions end to end.
func BenchmarkFindings(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := exper.NewSuite(benchBudget)
		if _, err := s.Findings(nil, nil, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulator4Way measures raw simulation throughput (committed
// instructions per second) on the baseline machine.
func BenchmarkSimulator4Way(b *testing.B) {
	p, err := Workload("compress")
	if err != nil {
		b.Fatal(err)
	}
	const n = 50_000
	b.SetBytes(0)
	var cycles, committed int64
	for i := 0; i < b.N; i++ {
		res, err := Run(DefaultConfig(), p, n)
		if err != nil {
			b.Fatal(err)
		}
		cycles += res.Cycles
		committed += res.Committed
	}
	b.ReportMetric(float64(committed)/b.Elapsed().Seconds(), "instr/s")
	reportIPC(b, committed, cycles)
}

// BenchmarkSimulator8WayTracked measures the 8-way machine with
// live-register histogram tracking (the measurement-run configuration).
func BenchmarkSimulator8WayTracked(b *testing.B) {
	p, err := Workload("tomcatv")
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Width = 8
	cfg.QueueSize = 64
	cfg.RegsPerFile = 2048
	cfg.TrackLiveRegisters = true
	var committed int64
	for i := 0; i < b.N; i++ {
		res, err := Run(cfg, p, 50_000)
		if err != nil {
			b.Fatal(err)
		}
		committed += res.Committed
	}
	b.ReportMetric(float64(committed)/b.Elapsed().Seconds(), "instr/s")
}

// BenchmarkTimingModel measures the analytical register-file model.
func BenchmarkTimingModel(b *testing.B) {
	params := DefaultTimingParams()
	sink := 0.0
	for i := 0; i < b.N; i++ {
		for _, n := range []int{32, 80, 128, 256} {
			sink += params.CycleTime(n, PortsForWidth(4, false))
			sink += params.CycleTime(n, PortsForWidth(8, false))
		}
	}
	if sink <= 0 {
		b.Fatal("model returned nonpositive times")
	}
}
