package regsim

import (
	"testing"
)

func TestQuickstartPath(t *testing.T) {
	p, err := Workload("compress")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(DefaultConfig(), p, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.CommitIPC() <= 0.5 || res.CommitIPC() > 4 {
		t.Errorf("implausible commit IPC %.2f", res.CommitIPC())
	}
	if res.Committed < 10_000 {
		t.Errorf("committed %d", res.Committed)
	}
}

func TestWorkloadRegistry(t *testing.T) {
	names := Workloads()
	if len(names) != 9 {
		t.Fatalf("%d workloads, want the paper's 9", len(names))
	}
	for _, n := range names {
		info, err := WorkloadByName(n)
		if err != nil || info.Name != n {
			t.Errorf("WorkloadByName(%s): %v", n, err)
		}
	}
	if _, err := Workload("not-a-benchmark"); err == nil {
		t.Error("unknown workload built")
	}
}

func TestConfigValidationSurfaces(t *testing.T) {
	p, _ := Workload("ora")
	cfg := DefaultConfig()
	cfg.Width = 5
	if _, err := Run(cfg, p, 100); err == nil {
		t.Error("width 5 accepted")
	}
	cfg = DefaultConfig()
	cfg.RegsPerFile = 16
	if _, err := Run(cfg, p, 100); err == nil {
		t.Error("16 registers accepted")
	}
}

func TestExceptionModelSwitch(t *testing.T) {
	p, _ := Workload("tomcatv")
	cfg := DefaultConfig()
	cfg.Width = 8
	cfg.QueueSize = 64
	cfg.RegsPerFile = 64
	var ipc [2]float64
	for i, model := range []ExceptionModel{Precise, Imprecise} {
		cfg.Model = model
		res, err := Run(cfg, p, 20_000)
		if err != nil {
			t.Fatal(err)
		}
		ipc[i] = res.CommitIPC()
	}
	if ipc[1] < ipc[0]*0.98 {
		t.Errorf("imprecise IPC %.2f below precise %.2f under register pressure", ipc[1], ipc[0])
	}
}

func TestTimingAPI(t *testing.T) {
	params := DefaultTimingParams()
	intT := params.CycleTime(80, PortsForWidth(4, false))
	fpT := params.CycleTime(80, PortsForWidth(4, true))
	if intT <= fpT {
		t.Error("integer file not slower than FP file")
	}
	if b := BIPS(2.5, intT); b <= 0 {
		t.Error("BIPS nonpositive")
	}
}

func TestRandomProgramAPI(t *testing.T) {
	p := RandomProgram(11)
	res, err := Run(DefaultConfig(), p, 1<<40)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Halted {
		t.Error("random program did not halt")
	}
}

func TestSuiteAPI(t *testing.T) {
	s := NewSuite(4_000)
	tab, err := s.Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 18 {
		t.Errorf("%d rows", len(tab.Rows))
	}
}
