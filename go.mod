module regsim

go 1.22
