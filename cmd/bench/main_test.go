package main_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"regsim/internal/cmdtest"
)

// TestExitCodes pins the process contract: malformed flags and arguments are
// usage errors (exit 2), success is 0.
func TestExitCodes(t *testing.T) {
	bin := cmdtest.Build(t, "bench")
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"positional argument", []string{"extra"}, 2},
		{"unknown flag", []string{"-no-such-flag"}, 2},
		{"bad benchtime", []string{"-benchtime", "fast"}, 2},
		{"uncreatable output", []string{"-quick", "-o", "/nonexistent-dir/bench.json"}, 2},
		{"unmatched run filter", []string{"-quick", "-run", "NoSuchCase", "-o", os.DevNull}, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, out := cmdtest.Run(t, bin, tc.args...)
			if code != tc.want {
				t.Fatalf("exit %d, want %d\n%s", code, tc.want, out)
			}
		})
	}
}

// TestQuickReport runs the CI smoke mode end-to-end on the CycleLoop grid
// and checks the report schema: every case present, with iteration counts
// and per-op figures filled in.
func TestQuickReport(t *testing.T) {
	bin := cmdtest.Build(t, "bench")
	path := filepath.Join(t.TempDir(), "bench.json")
	code, out := cmdtest.Run(t, bin, "-quick", "-run", "CycleLoop", "-o", path)
	if code != 0 {
		t.Fatalf("exit %d\n%s", code, out)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("no report written: %v", err)
	}
	var rep struct {
		GoVersion string `json:"goVersion"`
		Results   []struct {
			Name       string             `json:"name"`
			Iterations int                `json:"iterations"`
			NsPerOp    float64            `json:"nsPerOp"`
			Extra      map[string]float64 `json:"extra"`
		} `json:"results"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v\n%s", err, data)
	}
	if rep.GoVersion == "" {
		t.Error("report missing goVersion")
	}
	// 2 widths × 4 queue sizes.
	if len(rep.Results) != 8 {
		t.Fatalf("got %d CycleLoop cases, want 8\n%s", len(rep.Results), data)
	}
	for _, r := range rep.Results {
		if r.Iterations < 1 || r.NsPerOp <= 0 {
			t.Errorf("%s: implausible measurement: %d iters, %v ns/op", r.Name, r.Iterations, r.NsPerOp)
		}
		if _, ok := r.Extra["simcycles/s"]; !ok {
			t.Errorf("%s: missing simcycles/s metric", r.Name)
		}
	}
}
