package main_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"regsim/internal/cmdtest"
)

// TestExitCodes pins the process contract: malformed flags and arguments are
// usage errors (exit 2), success is 0.
func TestExitCodes(t *testing.T) {
	bin := cmdtest.Build(t, "bench")
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"positional argument", []string{"extra"}, 2},
		{"unknown flag", []string{"-no-such-flag"}, 2},
		{"bad benchtime", []string{"-benchtime", "fast"}, 2},
		{"uncreatable output", []string{"-quick", "-o", "/nonexistent-dir/bench.json"}, 2},
		{"unmatched run filter", []string{"-quick", "-run", "NoSuchCase", "-o", os.DevNull}, 2},
		{"missing baseline", []string{"-quick", "-compare", "/nonexistent/baseline.json", "-o", os.DevNull}, 2},
		{"bad regress threshold", []string{"-quick", "-regress", "0", "-o", os.DevNull}, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, out := cmdtest.Run(t, bin, tc.args...)
			if code != tc.want {
				t.Fatalf("exit %d, want %d\n%s", code, tc.want, out)
			}
		})
	}
}

// TestQuickReport runs the CI smoke mode end-to-end on the CycleLoop grid
// and checks the report schema: every case present, with iteration counts
// and per-op figures filled in.
func TestQuickReport(t *testing.T) {
	bin := cmdtest.Build(t, "bench")
	path := filepath.Join(t.TempDir(), "bench.json")
	code, out := cmdtest.Run(t, bin, "-quick", "-run", "CycleLoop", "-o", path)
	if code != 0 {
		t.Fatalf("exit %d\n%s", code, out)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("no report written: %v", err)
	}
	var rep struct {
		GoVersion string `json:"goVersion"`
		Results   []struct {
			Name       string             `json:"name"`
			Iterations int                `json:"iterations"`
			NsPerOp    float64            `json:"nsPerOp"`
			Extra      map[string]float64 `json:"extra"`
		} `json:"results"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v\n%s", err, data)
	}
	if rep.GoVersion == "" {
		t.Error("report missing goVersion")
	}
	// 2 widths × 4 queue sizes.
	if len(rep.Results) != 8 {
		t.Fatalf("got %d CycleLoop cases, want 8\n%s", len(rep.Results), data)
	}
	for _, r := range rep.Results {
		if r.Iterations < 1 || r.NsPerOp <= 0 {
			t.Errorf("%s: implausible measurement: %d iters, %v ns/op", r.Name, r.Iterations, r.NsPerOp)
		}
		if _, ok := r.Extra["simcycles/s"]; !ok {
			t.Errorf("%s: missing simcycles/s metric", r.Name)
		}
	}
}

// TestCompareGate pins the regression gate's exit-code contract by replaying
// one quick case against synthesized baselines: a regression beyond the
// threshold exits 1 with a markdown delta table, a matching (or absent)
// baseline case passes, and a malformed baseline is a usage error caught
// before any measurement runs.
func TestCompareGate(t *testing.T) {
	bin := cmdtest.Build(t, "bench")
	dir := t.TempDir()

	// Measure once to learn the case's real name and rough ns/op.
	real := filepath.Join(dir, "real.json")
	if code, out := cmdtest.Run(t, bin, "-quick", "-run", "CycleLoop/w4/q8", "-o", real); code != 0 {
		t.Fatalf("measure: exit %d\n%s", code, out)
	}
	var rep struct {
		Results []struct {
			Name    string  `json:"name"`
			NsPerOp float64 `json:"nsPerOp"`
		} `json:"results"`
	}
	raw, err := os.ReadFile(real)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 1 {
		t.Fatalf("got %d cases, want exactly 1 for the gate fixture\n%s", len(rep.Results), raw)
	}
	name := rep.Results[0].Name

	writeBaseline := func(t *testing.T, nsPerOp float64) string {
		t.Helper()
		path := filepath.Join(t.TempDir(), "baseline.json")
		doc := map[string]any{
			"date":    "2026-01-01T00:00:00Z",
			"results": []map[string]any{{"name": name, "nsPerOp": nsPerOp}},
		}
		raw, _ := json.Marshal(doc)
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}

	t.Run("regression exits 1", func(t *testing.T) {
		// A baseline this far below any real measurement must trip the gate.
		base := writeBaseline(t, 1)
		code, out := cmdtest.Run(t, bin, "-quick", "-run", name, "-o", os.DevNull, "-compare", base)
		if code != 1 {
			t.Fatalf("exit %d, want 1\n%s", code, out)
		}
		if !strings.Contains(out, "REGRESSION") || !strings.Contains(out, "| case |") {
			t.Errorf("no markdown verdict table in output:\n%s", out)
		}
	})
	t.Run("matching baseline passes", func(t *testing.T) {
		// A generous baseline (far above any real measurement) cannot trip
		// a regression gate; quick-mode numbers are too noisy to assert an
		// exact match.
		base := writeBaseline(t, 1e12)
		code, out := cmdtest.Run(t, bin, "-quick", "-run", name, "-o", os.DevNull, "-compare", base)
		if code != 0 {
			t.Fatalf("exit %d, want 0\n%s", code, out)
		}
		if !strings.Contains(out, "improved") {
			t.Errorf("delta table missing the improved verdict:\n%s", out)
		}
	})
	t.Run("unknown cases never gate", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "baseline.json")
		doc := `{"date":"2026-01-01T00:00:00Z","results":[{"name":"NoSuchCase","nsPerOp":1}]}`
		if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
			t.Fatal(err)
		}
		code, out := cmdtest.Run(t, bin, "-quick", "-run", name, "-o", os.DevNull, "-compare", path)
		if code != 0 {
			t.Fatalf("exit %d, want 0\n%s", code, out)
		}
		if !strings.Contains(out, "new case") || !strings.Contains(out, "not run") {
			t.Errorf("one-sided cases not reported:\n%s", out)
		}
	})
	t.Run("malformed baseline is a usage error", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "baseline.json")
		if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
			t.Fatal(err)
		}
		if code, out := cmdtest.Run(t, bin, "-quick", "-run", name, "-o", os.DevNull, "-compare", path); code != 2 {
			t.Fatalf("exit %d, want 2\n%s", code, out)
		}
	})
}
