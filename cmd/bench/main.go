// Command bench runs the repository's benchmark trajectory — the experiment
// benchmarks (Table1, Fig3, Fig6) plus the CycleLoop scheduler
// microbenchmark grid — through testing.Benchmark and records the results as
// a JSON report (by convention BENCH_core.json at the repository root), so
// successive PRs accumulate comparable numbers.
//
// The measurement code itself lives in internal/benchrun and is shared with
// the root bench_test.go entry points: `go test -bench=.` and `bench` time
// exactly the same functions.
//
// Usage:
//
//	bench [-quick] [-benchtime 3x] [-run CycleLoop] [-o BENCH_core.json]
//	      [-compare BENCH_core.json] [-regress 10]
//
// -quick runs every case for a single iteration — the CI smoke mode, which
// proves the suite still runs without spending minutes on stable numbers.
//
// -compare turns the run into a regression gate: after measuring, every case
// is compared against the same-named case in the baseline report, a
// markdown-friendly delta table is printed, and the process exits 1 if any
// case's ns/op regressed by more than -regress percent (default 10). Cases
// present on only one side are reported but never gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"regsim/internal/benchrun"
)

// caseResult is one benchmark case in the report. Extra carries the
// benchmark's custom metrics (ns/cycle, simcycles/s, instr/s for the
// CycleLoop grid).
type caseResult struct {
	Name        string             `json:"name"`
	Iterations  int                `json:"iterations"`
	NsPerOp     float64            `json:"nsPerOp"`
	AllocsPerOp int64              `json:"allocsPerOp"`
	BytesPerOp  int64              `json:"bytesPerOp"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// report is the BENCH_core.json schema.
type report struct {
	GoVersion       string       `json:"goVersion"`
	GOOS            string       `json:"goos"`
	GOARCH          string       `json:"goarch"`
	Date            string       `json:"date"`
	Benchtime       string       `json:"benchtime,omitempty"`
	SuiteBudget     int64        `json:"suiteBudget"`
	CycleLoopBudget int64        `json:"cycleLoopBudget"`
	Results         []caseResult `json:"results"`
}

func main() {
	quick := flag.Bool("quick", false, "run each case for a single iteration (CI smoke mode)")
	benchtime := flag.String("benchtime", "", "time or iteration count per case, as for -test.benchtime (e.g. 2s or 3x)")
	run := flag.String("run", "", "only run cases whose name contains this substring")
	out := flag.String("o", "BENCH_core.json", "output path for the JSON report")
	compare := flag.String("compare", "", "baseline report to compare against; regressions beyond -regress exit 1")
	regress := flag.Float64("regress", 10, "ns/op regression threshold for -compare, in percent")
	testing.Init()
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: bench [-quick] [-benchtime 3x] [-run substring] [-o BENCH_core.json] [-compare baseline.json] [-regress pct]")
		os.Exit(2)
	}
	if *regress <= 0 {
		fmt.Fprintf(os.Stderr, "bench: invalid -regress %v: want a positive percentage\n", *regress)
		os.Exit(2)
	}
	// Load the baseline up front: a missing or malformed baseline is a usage
	// error, and it must fail before the measurement spends minutes.
	var baseline *report
	if *compare != "" {
		baseline = &report{}
		raw, err := os.ReadFile(*compare)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: invalid -compare: %v\n", err)
			os.Exit(2)
		}
		if err := json.Unmarshal(raw, baseline); err != nil {
			fmt.Fprintf(os.Stderr, "bench: invalid -compare %q: %v\n", *compare, err)
			os.Exit(2)
		}
	}
	bt := *benchtime
	if bt == "" && *quick {
		bt = "1x"
	}
	if bt != "" {
		// testing.Init registered the -test.* flags; routing our value
		// through them configures testing.Benchmark below.
		if err := flag.Set("test.benchtime", bt); err != nil {
			fmt.Fprintf(os.Stderr, "bench: invalid -benchtime %q: %v\n", bt, err)
			os.Exit(2)
		}
	}
	if err := flag.Set("test.benchmem", "true"); err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
	// Open the report up front: an uncreatable path is a usage error, and a
	// multi-minute run must not fail at the very end on a typo'd directory.
	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: invalid -o %q: %v\n", *out, err)
		os.Exit(2)
	}

	rep := report{
		GoVersion:       runtime.Version(),
		GOOS:            runtime.GOOS,
		GOARCH:          runtime.GOARCH,
		Date:            time.Now().UTC().Format(time.RFC3339),
		Benchtime:       bt,
		SuiteBudget:     benchrun.SuiteBudget,
		CycleLoopBudget: benchrun.CycleLoopBudget,
	}
	matched := false
	for _, c := range benchrun.Suite() {
		if *run != "" && !strings.Contains(c.Name, *run) {
			continue
		}
		matched = true
		r := testing.Benchmark(c.Fn)
		if r.N == 0 {
			// The case's b.Fatal aborted the measurement.
			fmt.Fprintf(os.Stderr, "bench: %s failed\n", c.Name)
			os.Exit(1)
		}
		fmt.Printf("%-20s %8d iters %14.0f ns/op %10d B/op %8d allocs/op\n",
			c.Name, r.N, float64(r.T.Nanoseconds())/float64(r.N),
			r.AllocedBytesPerOp(), r.AllocsPerOp())
		rep.Results = append(rep.Results, caseResult{
			Name:        c.Name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Extra:       r.Extra,
		})
	}
	if !matched {
		fmt.Fprintf(os.Stderr, "bench: no case matches -run %q\n", *run)
		os.Exit(2)
	}

	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d cases)\n", *out, len(rep.Results))

	if baseline != nil && !compareReports(os.Stdout, baseline, &rep, *regress) {
		fmt.Fprintf(os.Stderr, "bench: ns/op regressed beyond %.0f%% against %s\n", *regress, *compare)
		os.Exit(1)
	}
}

// compareReports prints a markdown delta table of new vs. baseline and
// reports whether every matched case stayed within the regression threshold.
// Quick (1x) numbers are noisy, so the table is advisory there — but the
// threshold logic is identical, and CI runs the step non-blocking.
func compareReports(w io.Writer, baseline, rep *report, regressPct float64) bool {
	base := make(map[string]caseResult, len(baseline.Results))
	for _, c := range baseline.Results {
		base[c.Name] = c
	}
	fmt.Fprintf(w, "\n### Benchmark comparison vs baseline (%s, threshold %.0f%%)\n\n", baseline.Date, regressPct)
	fmt.Fprintf(w, "| case | baseline ns/op | current ns/op | delta | verdict |\n")
	fmt.Fprintf(w, "|---|---:|---:|---:|---|\n")
	ok := true
	matched := make(map[string]bool, len(rep.Results))
	for _, c := range rep.Results {
		b, found := base[c.Name]
		if !found {
			fmt.Fprintf(w, "| %s | — | %.0f | — | new case |\n", c.Name, c.NsPerOp)
			continue
		}
		matched[c.Name] = true
		if b.NsPerOp <= 0 {
			fmt.Fprintf(w, "| %s | %.0f | %.0f | — | baseline unusable |\n", c.Name, b.NsPerOp, c.NsPerOp)
			continue
		}
		delta := 100 * (c.NsPerOp - b.NsPerOp) / b.NsPerOp
		verdict := "ok"
		if delta > regressPct {
			verdict = "REGRESSION"
			ok = false
		} else if delta < -regressPct {
			verdict = "improved"
		}
		fmt.Fprintf(w, "| %s | %.0f | %.0f | %+.1f%% | %s |\n", c.Name, b.NsPerOp, c.NsPerOp, delta, verdict)
	}
	for _, b := range baseline.Results {
		if !matched[b.Name] {
			fmt.Fprintf(w, "| %s | %.0f | — | — | not run |\n", b.Name, b.NsPerOp)
		}
	}
	return ok
}
