// Command regsimd serves the simulator over HTTP: simulation-as-a-service
// for the paper's design-space sweeps. One daemon hosts one experiment
// suite, so every request shares the same in-memory memo, in-flight
// coalescing, and (with -cache-dir) the same persistent result cache as
// cmd/paper and cmd/regsim.
//
// Usage:
//
//	regsimd [-addr :8265] [-jobs N] [-cache-dir dir] [-n budget] ...
//
// Endpoints: POST /v1/simulate, POST /v1/sweep, GET /v1/workloads,
// GET /v1/timing, GET /healthz, GET /metrics (JSON, or Prometheus text
// exposition with ?format=prometheus). See the README's Serving and
// Observability sections for the wire format and curl examples.
//
// All output is structured JSON logs (log/slog) on stderr; every request is
// logged with its trace ID (also echoed as the X-Trace-Id response header),
// and requests slower than -slow get their full span tree inlined. With
// -debug-addr a second listener serves net/http/pprof and /debug/obs (recent
// request traces, exportable as Perfetto files via /debug/obs/trace?id=).
//
// SIGINT/SIGTERM triggers a graceful drain: /healthz flips to 503, new
// simulation requests are refused with Retry-After, in-flight requests run
// to completion (bounded by -drain-timeout), and the final sweep statistics
// are logged on the way out.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"syscall"
	"time"

	"regsim/internal/exper"
	"regsim/internal/server"
	"regsim/internal/sweep/rescache"
)

// defaultCacheDir mirrors cmd/paper: the shared persistent result cache
// under the OS user cache directory, empty (caching off) when the platform
// reports none.
func fatalUsage(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "regsimd: "+format+"\n", args...)
	os.Exit(2)
}

func defaultCacheDir() string {
	base, err := os.UserCacheDir()
	if err != nil {
		return ""
	}
	return filepath.Join(base, "regsim", "results")
}

func main() {
	addr := flag.String("addr", ":8265", "listen address")
	budget := flag.Int64("n", 200_000, "default committed-instruction budget for specs that omit one")
	jobs := flag.Int("jobs", runtime.GOMAXPROCS(0), "concurrent simulations inside one sweep request")
	cacheDir := flag.String("cache-dir", defaultCacheDir(), "persistent result-cache directory shared with cmd/paper and cmd/regsim (empty disables caching)")
	noCache := flag.Bool("no-cache", false, "bypass the persistent result cache")
	maxInFlight := flag.Int("max-inflight", 0, "admission bound on concurrently executing simulation requests (0 = GOMAXPROCS)")
	maxQueue := flag.Int("max-queue", 0, "bounded wait queue behind the in-flight slots (0 = 4×max-inflight)")
	defaultTimeout := flag.Duration("default-timeout", 30*time.Second, "per-request deadline when the client sends no ?timeout=")
	maxTimeout := flag.Duration("max-timeout", 2*time.Minute, "upper clamp on client ?timeout= requests")
	maxSweepSpecs := flag.Int("max-sweep-specs", 512, "largest spec matrix one sweep request may carry")
	maxBudget := flag.Int64("max-budget", 10_000_000, "largest per-spec commit budget a request may ask for")
	drainTimeout := flag.Duration("drain-timeout", 2*time.Minute, "how long shutdown waits for in-flight requests")
	debugAddr := flag.String("debug-addr", "", "listen address for the operator debug surface (pprof, /debug/obs); empty disables it")
	slow := flag.Duration("slow", 10*time.Second, "latency above which a request's full span tree is logged (0 disables)")
	traceBuffer := flag.Int("trace-buffer", 0, "recent request traces kept for /debug/obs (0 = default)")
	quiet := flag.Bool("quiet", false, "suppress the per-request access log")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: regsimd [flags] (it takes no arguments)")
		flag.PrintDefaults()
		os.Exit(2)
	}
	// Malformed flag values are usage errors (exit 2); only failures while
	// actually serving (a port in use, a drain timeout) are runtime errors.
	if *budget <= 0 {
		fatalUsage("invalid -n %d: the commit budget must be positive", *budget)
	}
	if *jobs <= 0 {
		fatalUsage("invalid -jobs %d: want at least one worker", *jobs)
	}
	if *slow < 0 {
		fatalUsage("invalid -slow %v: the slow-request threshold cannot be negative", *slow)
	}
	if *traceBuffer < 0 {
		fatalUsage("invalid -trace-buffer %d: want a non-negative ring size", *traceBuffer)
	}

	// All daemon output is structured JSON on stderr: slog records directly,
	// and the legacy *log.Logger surfaces (panic logs, http.Server errors)
	// through the slog adapter, so one `jq` works on the whole stream.
	slogger := slog.New(slog.NewJSONHandler(os.Stderr, nil))
	logger := slog.NewLogLogger(slogger.Handler(), slog.LevelError)

	suite := exper.NewSuite(*budget)
	suite.Jobs = *jobs
	if *cacheDir != "" && !*noCache {
		store, err := rescache.Open(*cacheDir)
		if err != nil {
			fatalUsage("invalid -cache-dir %q: %v", *cacheDir, err)
		}
		suite.Cache = store
		slogger.Info("result cache open", "dir", *cacheDir)
	} else {
		slogger.Info("result cache disabled; every cold spec simulates")
	}

	cfg := server.Config{
		Suite:          suite,
		MaxInFlight:    *maxInFlight,
		MaxQueue:       *maxQueue,
		DefaultTimeout: *defaultTimeout,
		MaxTimeout:     *maxTimeout,
		MaxSweepSpecs:  *maxSweepSpecs,
		MaxBudget:      *maxBudget,
		ErrorLog:       logger,
		SlowRequest:    *slow,
		TraceBuffer:    *traceBuffer,
	}
	if !*quiet {
		cfg.Logger = slogger
	}
	srv, err := server.New(cfg)
	if err != nil {
		// Every server.Config field comes straight from a flag, so a
		// rejected configuration is a usage error.
		fatalUsage("%v", err)
	}

	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ErrorLog:          logger,
	}

	// The debug surface (pprof, /debug/obs) listens on its own address so it
	// is never reachable through the serving port or its load balancer.
	var ds *http.Server
	if *debugAddr != "" {
		ds = &http.Server{
			Addr:              *debugAddr,
			Handler:           srv.DebugHandler(),
			ReadHeaderTimeout: 10 * time.Second,
			ErrorLog:          logger,
		}
		go func() {
			slogger.Info("debug surface listening", "addr", *debugAddr)
			if err := ds.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				// An unusable debug address is a runtime error like an
				// unusable serving address: fail loudly rather than run
				// half-configured.
				slogger.Error("debug listener failed", "addr", *debugAddr, "err", err.Error())
				os.Exit(1)
			}
		}()
	}

	// Graceful drain: the first signal stops admission and waits for
	// in-flight work; a second signal aborts immediately.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-ctx.Done()
		stop() // restore default signal behaviour: a second ^C kills us
		slogger.Info("drain: refusing new simulation work", "drainTimeout", drainTimeout.String())
		srv.Drain()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := hs.Shutdown(shutdownCtx); err != nil {
			slogger.Warn("drain incomplete; closing remaining connections", "err", err.Error())
			hs.Close()
		}
		if ds != nil {
			ds.Close()
		}
	}()

	slogger.Info("listening", "addr", *addr, "jobs", *jobs, "budget", *budget)
	// A listen failure (bad address, port in use) is a runtime error: the
	// flag was well-formed, the environment refused it.
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		slogger.Error("listen failed", "addr", *addr, "err", err.Error())
		os.Exit(1)
	}
	<-done
	st := suite.SweepStats()
	slogger.Info("exiting",
		"runs", st.Runs, "memoHits", st.MemoHits, "coalesced", st.Deduped, "cacheHits", st.CacheHits)
}
