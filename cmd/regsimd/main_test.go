package main_test

import (
	"os"
	"path/filepath"
	"testing"

	"regsim/internal/cmdtest"
)

// TestExitCodes pins the process contract: malformed flags are usage errors
// (exit 2) caught before the daemon binds anything; a well-formed flag the
// environment refuses (an unusable listen address) is a runtime error
// (exit 1). The success path is covered by the server package's tests — a
// daemon that serves forever has no exit code to assert here.
func TestExitCodes(t *testing.T) {
	bin := cmdtest.Build(t, "regsimd")
	notADir := filepath.Join(t.TempDir(), "file")
	if err := os.WriteFile(notADir, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"positional arguments", []string{"extra"}, 2},
		{"unknown flag", []string{"-no-such-flag"}, 2},
		{"bad budget", []string{"-n", "0"}, 2},
		{"bad jobs", []string{"-jobs", "-1"}, 2},
		{"bad cache dir", []string{"-cache-dir", notADir}, 2},
		{"timeouts inverted", []string{"-no-cache", "-default-timeout", "5m", "-max-timeout", "1m"}, 2},
		{"negative slow threshold", []string{"-no-cache", "-slow", "-1s"}, 2},
		{"negative trace buffer", []string{"-no-cache", "-trace-buffer", "-1"}, 2},
		{"unusable listen address", []string{"-no-cache", "-addr", "256.256.256.256:0"}, 1},
		// The serving address is fine; the debug listener's is not. The
		// daemon must die loudly rather than serve without its debug surface.
		{"unusable debug address", []string{"-no-cache", "-addr", "127.0.0.1:0", "-debug-addr", "256.256.256.256:0"}, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, out := cmdtest.Run(t, bin, tc.args...)
			if code != tc.want {
				t.Fatalf("exit %d, want %d\n%s", code, tc.want, out)
			}
		})
	}
}
