package main_test

import (
	"testing"

	"regsim/internal/cmdtest"
)

// TestExitCodes pins the process contract: malformed flags are usage errors
// (exit 2) caught before the router binds anything; a well-formed flag the
// environment refuses (an unusable listen address) is a runtime error
// (exit 1). Routing behaviour itself is covered by the cluster package's
// tests — a router that serves forever has no exit code to assert here.
func TestExitCodes(t *testing.T) {
	bin := cmdtest.Build(t, "regsim-router")
	workers := "-workers=http://127.0.0.1:1"
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"positional arguments", []string{workers, "extra"}, 2},
		{"unknown flag", []string{workers, "-no-such-flag"}, 2},
		{"no workers no registration", []string{}, 2},
		{"bad budget", []string{workers, "-n", "0"}, 2},
		{"bad worker URL", []string{"-workers", "ftp://host"}, 2},
		{"bad policy", []string{workers, "-policy", "random"}, 2},
		{"bad spill threshold", []string{workers, "-spill-threshold", "1.5"}, 2},
		{"bad dead-after", []string{workers, "-dead-after", "0"}, 2},
		{"timeouts inverted", []string{workers, "-default-timeout", "5m", "-max-timeout", "1m"}, 2},
		{"negative trace buffer", []string{workers, "-trace-buffer", "-1"}, 2},
		{"unusable listen address", []string{workers, "-addr", "256.256.256.256:0"}, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, out := cmdtest.Run(t, bin, tc.args...)
			if code != tc.want {
				t.Fatalf("exit %d, want %d\n%s", code, tc.want, out)
			}
		})
	}
}
