// Command regsim-router fronts a pool of regsimd workers with cache-affinity
// routing: each simulation spec is fingerprinted (the same SHA-256 the
// persistent result cache keys entries by) and rendezvous-hashed onto a
// preferred worker, so repeated traffic for a configuration lands where its
// result is already memoized — a cluster of small caches behaving like one
// big one. Sweeps are sharded per spec across the pool and merged back in
// request order.
//
// Usage:
//
//	regsim-router -workers http://host1:8265,http://host2:8265 [-addr :8266] ...
//
// The router serves the same wire surface as a worker (POST /v1/simulate,
// POST /v1/sweep, GET /v1/workloads, /v1/timing, /healthz, /metrics), so
// clients point at either interchangeably, plus GET /v1/cluster (pool
// status) and, with -allow-register, POST /v1/cluster/register so workers
// can announce themselves at startup.
//
// Failure handling: a background prober polls each worker's GET /v1/load;
// saturated workers are spilled past, draining workers deprioritized, and a
// worker that dies mid-request — mid-sweep included — is routed around, its
// pending specs re-sharded onto the survivors. SIGINT/SIGTERM drains
// gracefully, exactly like regsimd.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"regsim/internal/cluster"
)

func fatalUsage(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "regsim-router: "+format+"\n", args...)
	os.Exit(2)
}

func main() {
	addr := flag.String("addr", ":8266", "listen address")
	workers := flag.String("workers", "", "comma-separated worker base URLs (e.g. http://host1:8265,http://host2:8265)")
	allowRegister := flag.Bool("allow-register", false, "accept POST /v1/cluster/register so workers can join at runtime")
	policy := flag.String("policy", string(cluster.PolicyAffinity), "routing policy: affinity (rendezvous-hash on the spec fingerprint) or roundrobin")
	budget := flag.Int64("n", 200_000, "default committed-instruction budget for specs that omit one; must match the workers' -n or routing keys diverge from cache keys")
	probeInterval := flag.Duration("probe-interval", 2*time.Second, "health/load probe period (negative disables probing)")
	probeTimeout := flag.Duration("probe-timeout", time.Second, "per-probe deadline")
	deadAfter := flag.Int("dead-after", 3, "consecutive failures before a worker is considered dead")
	spill := flag.Float64("spill-threshold", 0.9, "admission-occupancy fraction above which a worker is spilled past")
	maxSweepSpecs := flag.Int("max-sweep-specs", 4096, "largest spec matrix one sweep request may carry")
	maxShardSpecs := flag.Int("max-shard-specs", 256, "largest sub-sweep sent to a single worker")
	maxBudget := flag.Int64("max-budget", 10_000_000, "largest per-spec commit budget a request may ask for")
	defaultTimeout := flag.Duration("default-timeout", 30*time.Second, "per-request deadline when the client sends no ?timeout=")
	maxTimeout := flag.Duration("max-timeout", 2*time.Minute, "upper clamp on client ?timeout= requests")
	drainTimeout := flag.Duration("drain-timeout", 2*time.Minute, "how long shutdown waits for in-flight requests")
	traceBuffer := flag.Int("trace-buffer", 0, "recent request traces kept in the debug ring (0 = default)")
	quiet := flag.Bool("quiet", false, "suppress the per-request access log")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: regsim-router [flags] (it takes no arguments)")
		flag.PrintDefaults()
		os.Exit(2)
	}
	var pool []string
	for _, raw := range strings.Split(*workers, ",") {
		if raw = strings.TrimSpace(raw); raw != "" {
			pool = append(pool, raw)
		}
	}
	if len(pool) == 0 && !*allowRegister {
		fatalUsage("no workers: pass -workers or enable -allow-register")
	}
	if *budget <= 0 {
		fatalUsage("invalid -n %d: the commit budget must be positive", *budget)
	}
	if *spill <= 0 || *spill > 1 {
		fatalUsage("invalid -spill-threshold %v: want a fraction in (0, 1]", *spill)
	}
	if *deadAfter <= 0 {
		fatalUsage("invalid -dead-after %d: want at least one failure", *deadAfter)
	}
	if *traceBuffer < 0 {
		fatalUsage("invalid -trace-buffer %d: want a non-negative ring size", *traceBuffer)
	}

	slogger := slog.New(slog.NewJSONHandler(os.Stderr, nil))
	logger := slog.NewLogLogger(slogger.Handler(), slog.LevelError)

	cfg := cluster.Config{
		Workers:        pool,
		AllowRegister:  *allowRegister,
		Policy:         cluster.Policy(*policy),
		DefaultBudget:  *budget,
		MaxSweepSpecs:  *maxSweepSpecs,
		MaxShardSpecs:  *maxShardSpecs,
		MaxBudget:      *maxBudget,
		DefaultTimeout: *defaultTimeout,
		MaxTimeout:     *maxTimeout,
		ProbeInterval:  *probeInterval,
		ProbeTimeout:   *probeTimeout,
		DeadAfter:      *deadAfter,
		SpillThreshold: *spill,
		TraceBuffer:    *traceBuffer,
	}
	if !*quiet {
		cfg.Logger = slogger
	}
	rt, err := cluster.New(cfg)
	if err != nil {
		// Every cluster.Config field comes straight from a flag, so a
		// rejected configuration is a usage error.
		fatalUsage("%v", err)
	}
	defer rt.Close()

	hs := &http.Server{
		Addr:              *addr,
		Handler:           rt.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ErrorLog:          logger,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-ctx.Done()
		stop() // restore default signal behaviour: a second ^C kills us
		slogger.Info("drain: refusing new simulation work", "drainTimeout", drainTimeout.String())
		rt.Drain()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := hs.Shutdown(shutdownCtx); err != nil {
			slogger.Warn("drain incomplete; closing remaining connections", "err", err.Error())
			hs.Close()
		}
	}()

	slogger.Info("listening", "addr", *addr, "workers", len(pool), "policy", *policy)
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		slogger.Error("listen failed", "addr", *addr, "err", err.Error())
		os.Exit(1)
	}
	<-done
	for _, w := range rt.Workers() {
		slogger.Info("worker final", "worker", w.Name, "state", w.State,
			"requests", w.Requests, "failures", w.Failures)
	}
}
