// Command regsim runs one benchmark on one machine configuration and prints
// the statistics block.
//
// Usage:
//
//	regsim [flags] <benchmark>
//
// Benchmarks: compress doduc espresso gcc1 mdljdp2 mdljsp2 ora su2cor
// tomcatv; random:<seed> for a generated structured program; or
// asm:<path> to assemble and run a .s file (see internal/asm for syntax).
//
// -verify re-simulates the configuration against the functional reference
// interpreter (differential oracle, runtime invariant checker on) and fails
// the run on any divergence; see VERIFY.md for the oracle contract.
//
// Observability flags: -account prints the top-down cycle accounting,
// -metrics-out writes the full telemetry snapshot (cycle accounts, latency
// percentiles, port histograms) as JSON, -chrome-trace writes a Perfetto /
// chrome://tracing loadable pipeline trace, and -cpuprofile / -memprofile
// profile the simulator itself (CPU samples during the run; a heap snapshot
// at exit).
//
// -cache-dir attaches the persistent result cache shared with cmd/paper: a
// plain benchmark run whose spec (and budget) was simulated before — by
// either command — is answered from disk instead of re-simulated. Runs that
// need the live machine (-trace, -chrome-trace, -account, -metrics-out) or
// a non-registry program (asm:/random:) always simulate.
//
// -checkpoint-dir attaches the architectural checkpoint store (also shared
// with cmd/paper): the run captures mid-run machine snapshots at milestone
// commit counts and fast-forwards over any compatible snapshot a previous
// run left behind, with bit-identical results. -sample <rate in (0,1)>
// switches to sampled simulation: only that fraction of the budget is
// simulated and the rest is extrapolated, so the printed statistics are
// estimates (see DESIGN.md §14 for the error bounds) and never enter the
// result cache. Both obey the same live-machine bypass as -cache-dir.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"regsim"
	"regsim/internal/asm"
	"regsim/internal/exper"
	"regsim/internal/isa"
	"regsim/internal/stats"
	"regsim/internal/sweep/rescache"
	"regsim/internal/telemetry"
	"regsim/internal/trace"
)

func main() {
	width := flag.Int("width", 4, "issue width (4 or 8)")
	queue := flag.Int("queue", 0, "dispatch queue entries (0 = 8×width, the paper's cost-effective size)")
	regs := flag.Int("regs", 80, "physical registers per file")
	model := flag.String("model", "precise", "exception model: precise or imprecise")
	ckind := flag.String("cache", "lockup-free", "data cache: perfect, lockup, or lockup-free")
	budget := flag.Int64("n", 200_000, "committed-instruction budget")
	track := flag.Bool("live", false, "track live-register histograms and print percentiles")
	traceN := flag.Int("trace", 0, "render a pipeline diagram of the first N instructions")
	account := flag.Bool("account", false, "print the top-down cycle accounting")
	metricsOut := flag.String("metrics-out", "", "write the full telemetry snapshot as JSON to this file")
	chromeTrace := flag.String("chrome-trace", "", "write a Chrome trace-event (Perfetto) JSON pipeline trace to this file")
	traceStart := flag.Int64("trace-start", 0, "first cycle captured by -chrome-trace")
	traceEnd := flag.Int64("trace-end", 0, "cycle bound of -chrome-trace capture (0 = unbounded)")
	traceLimit := flag.Int("trace-limit", 0, "instruction cap of -chrome-trace capture (0 = default 100000)")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the simulator to this file")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile to this file when the run finishes")
	cacheDir := flag.String("cache-dir", "", "persistent result-cache directory shared with cmd/paper (empty disables caching)")
	noCache := flag.Bool("no-cache", false, "bypass the persistent result cache")
	ckptDir := flag.String("checkpoint-dir", "", "architectural checkpoint directory shared with cmd/paper: capture warm-up snapshots and fast-forward over compatible ones, bit-identically (empty disables checkpointing)")
	sample := flag.Float64("sample", 0, "sampled simulation: simulate this fraction of the budget, in (0,1), and extrapolate the rest (statistics become estimates; 0 disables)")
	verifyRun := flag.Bool("verify", false, "after the run, check the configuration against the functional reference interpreter (differential oracle + runtime invariant checker) and the checkpoint round-trip leg; roughly quadruples runtime")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintf(os.Stderr, "usage: regsim [flags] <benchmark>\nbenchmarks: %s, random:<seed>, asm:<path>\n",
			strings.Join(regsim.Workloads(), " "))
		flag.PrintDefaults()
		os.Exit(2)
	}
	// Reject malformed machine parameters here with a usage error rather
	// than handing them to core.NewMachine: the flag is wrong, not the run.
	if *width != 4 && *width != 8 {
		fatalUsage("invalid -width %d: the machine model supports issue widths 4 and 8", *width)
	}
	if *regs < 0 {
		fatalUsage("invalid -regs %d: the register-file size cannot be negative", *regs)
	}
	if *queue < 0 {
		fatalUsage("invalid -queue %d: the dispatch-queue size cannot be negative", *queue)
	}
	if *budget <= 0 {
		fatalUsage("invalid -n %d: the commit budget must be positive", *budget)
	}
	if *traceStart < 0 || *traceEnd < 0 || *traceLimit < 0 {
		fatalUsage("invalid -trace-start/-trace-end/-trace-limit: capture bounds cannot be negative")
	}
	mdl, err := parseModel(*model)
	if err != nil {
		fatalUsage("%v", err)
	}
	kind, err := parseCache(*ckind)
	if err != nil {
		fatalUsage("%v", err)
	}
	// Malformed benchmark arguments are usage errors too; failures while
	// loading a well-formed one (an unreadable asm: file) are runtime errors.
	bench := flag.Arg(0)
	if seedStr, ok := strings.CutPrefix(bench, "random:"); ok {
		if _, perr := strconv.ParseInt(seedStr, 10, 64); perr != nil {
			fatalUsage("invalid benchmark %q: bad random seed %q", bench, seedStr)
		}
	} else if !strings.HasPrefix(bench, "asm:") {
		if _, werr := regsim.WorkloadByName(bench); werr != nil {
			fatalUsage("unknown benchmark %q (have %s, random:<seed>, asm:<path>)",
				bench, strings.Join(regsim.Workloads(), " "))
		}
	}
	// An uncreatable profile path is a usage error: the flag is wrong, and
	// opening it up front means a multi-minute run cannot fail at the very
	// end on a typo'd directory.
	var memf *os.File
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fatalUsage("invalid -memprofile %q: %v", *memprofile, err)
		}
		memf = f
	}
	var store *rescache.Store
	if *cacheDir != "" && !*noCache {
		var err error
		if store, err = rescache.Open(*cacheDir); err != nil {
			fatalUsage("invalid -cache-dir %q: %v", *cacheDir, err)
		}
	}
	// A sampling rate outside (0,1) cannot mean anything (1 would sample the
	// whole run; negative is nonsense), so it is a usage error like any other
	// malformed machine parameter.
	if *sample != 0 && (*sample <= 0 || *sample >= 1) {
		fatalUsage("invalid -sample %v: the sampling rate must lie in (0, 1), or 0 to disable", *sample)
	}
	var ckpts *regsim.CheckpointStore
	if *ckptDir != "" {
		var err error
		if ckpts, err = regsim.OpenCheckpointStore(*ckptDir); err != nil {
			fatalUsage("invalid -checkpoint-dir %q: %v", *ckptDir, err)
		}
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "regsim: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "regsim: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	opts := runOpts{
		width: *width, queue: *queue, regs: *regs,
		model: *model, ckind: *ckind, mdl: mdl, kind: kind, budget: *budget,
		track: *track, traceN: *traceN, account: *account,
		metricsOut: *metricsOut, chromeTrace: *chromeTrace, store: store,
		ckpts: ckpts, sample: *sample,
		verify: *verifyRun,
		chromeOpts: trace.ChromeOptions{
			StartCycle: *traceStart, EndCycle: *traceEnd, MaxInstructions: *traceLimit,
		},
	}
	if err := run(bench, opts); err != nil {
		fmt.Fprintf(os.Stderr, "regsim: %v\n", err)
		os.Exit(1)
	}
	if memf != nil {
		// Collect garbage first so the snapshot shows live simulator state,
		// not transient allocation churn.
		runtime.GC()
		if err := pprof.WriteHeapProfile(memf); err != nil {
			fmt.Fprintf(os.Stderr, "regsim: writing -memprofile: %v\n", err)
			os.Exit(1)
		}
		if err := memf.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "regsim: writing -memprofile: %v\n", err)
			os.Exit(1)
		}
	}
}

func fatalUsage(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "regsim: "+format+"\n", args...)
	os.Exit(2)
}

func parseModel(s string) (regsim.ExceptionModel, error) {
	switch s {
	case "precise":
		return regsim.Precise, nil
	case "imprecise":
		return regsim.Imprecise, nil
	}
	return 0, fmt.Errorf("invalid -model %q: want precise or imprecise", s)
}

func parseCache(s string) (regsim.CacheKind, error) {
	switch s {
	case "perfect":
		return regsim.PerfectCache, nil
	case "lockup":
		return regsim.LockupCache, nil
	case "lockup-free":
		return regsim.LockupFreeCache, nil
	}
	return 0, fmt.Errorf("invalid -cache %q: want perfect, lockup, or lockup-free", s)
}

type runOpts struct {
	width, queue, regs int
	model, ckind       string
	mdl                regsim.ExceptionModel
	kind               regsim.CacheKind
	budget             int64
	track              bool
	traceN             int
	account            bool
	metricsOut         string
	chromeTrace        string
	chromeOpts         trace.ChromeOptions
	store              *rescache.Store
	ckpts              *regsim.CheckpointStore
	sample             float64
	verify             bool
}

func run(bench string, o runOpts) error {
	var p *regsim.Program
	var err error
	if path, ok := strings.CutPrefix(bench, "asm:"); ok {
		src, rerr := os.ReadFile(path)
		if rerr != nil {
			return rerr
		}
		if p, err = asm.Parse(path, string(src)); err != nil {
			return err
		}
	} else if seedStr, ok := strings.CutPrefix(bench, "random:"); ok {
		seed, perr := strconv.ParseInt(seedStr, 10, 64)
		if perr != nil {
			return fmt.Errorf("bad random seed %q", seedStr)
		}
		p = regsim.RandomProgram(seed)
	} else if p, err = regsim.Workload(bench); err != nil {
		return err
	}

	cfg := regsim.DefaultConfig()
	cfg.Width = o.width
	if o.queue == 0 {
		o.queue = 8 * o.width
	}
	cfg.QueueSize = o.queue
	cfg.RegsPerFile = o.regs
	cfg.TrackLiveRegisters = o.track
	cfg.Model = o.mdl
	cfg.DCache = cfg.DCache.WithKind(o.kind)

	var rec *trace.Recorder
	var hooks []func(regsim.Event)
	if o.traceN > 0 {
		rec = trace.NewRecorder(o.traceN)
		hooks = append(hooks, rec.Hook())
	}
	var ct *trace.ChromeTracer
	if o.chromeTrace != "" {
		ct = trace.NewChromeTracer(o.chromeOpts)
		hooks = append(hooks, ct.Hook())
		cfg.CounterSampler = ct.CounterHook()
		// Counter tracks at 1/16 cycle resolution keep the trace small
		// while still resolving queue-occupancy ramps.
		cfg.CounterEvery = 16
	}
	switch len(hooks) {
	case 0:
	case 1:
		cfg.Tracer = hooks[0]
	default:
		cfg.Tracer = func(ev regsim.Event) {
			for _, h := range hooks {
				h(ev)
			}
		}
	}

	var tel *regsim.Telemetry
	if o.account || o.metricsOut != "" {
		tel = regsim.NewTelemetry()
		cfg.Telemetry = tel
		if o.metricsOut != "" {
			cfg.TrackLiveRegisters = true // the snapshot includes port histograms
		}
	}

	// A Chrome-trace run is wrapped in a span tree so the exported file shows
	// the run phase alongside the pipeline tracks, with the top-down cycle
	// accounting attached to the core.run slice — the same shape a traced
	// serving request produces.
	var root *regsim.Span
	runCtx := context.Background()
	if ct != nil {
		root, runCtx = regsim.StartTrace(runCtx, "regsim "+bench)
		if tel == nil {
			tel = regsim.NewTelemetry()
			cfg.Telemetry = tel
		}
	}

	// A plain registry benchmark with no machine-observing flags can be
	// answered from the persistent result cache (shared with cmd/paper),
	// fast-forwarded over checkpoints, or run sampled; anything that needs
	// the live pipeline always simulates cold and exactly.
	var res *regsim.Result
	useSuite := o.store != nil || o.ckpts != nil || o.sample != 0
	if useSuite && (strings.Contains(bench, ":") || len(hooks) > 0 || tel != nil) {
		fmt.Fprintln(os.Stderr, "regsim: note: this run needs the live machine; bypassing -cache-dir/-checkpoint-dir/-sample")
		o.store, o.ckpts, o.sample = nil, nil, 0
		useSuite = false
	}
	if useSuite {
		s := exper.NewSuite(o.budget)
		s.Cache = o.store
		s.Checkpoints = o.ckpts
		s.SampleRate = o.sample
		res, err = s.Run(exper.Spec{
			Bench: bench, Width: o.width, Queue: o.queue, Regs: o.regs,
			Model: cfg.Model, Cache: o.kind, Track: o.track,
		})
		if err == nil {
			if st := s.SweepStats(); st.CacheHits > 0 {
				fmt.Fprintln(os.Stderr, "regsim: result served from the cache")
			}
			if o.ckpts != nil {
				if st := o.ckpts.Stats(); st.SnapshotHits > 0 || st.ResultHits > 0 {
					fmt.Fprintf(os.Stderr, "regsim: checkpoint store: %d snapshot hit(s), %d result hit(s)\n", st.SnapshotHits, st.ResultHits)
				}
			}
			if o.sample != 0 {
				fmt.Fprintf(os.Stderr, "regsim: note: sampled run (rate %v); statistics are extrapolated estimates\n", o.sample)
			}
		}
	} else {
		runSpan, _ := regsim.StartSpan(runCtx, "core.run")
		res, err = regsim.Run(cfg, p, o.budget)
		if err == nil && runSpan != nil {
			runSpan.Set("cycles", res.Cycles)
			runSpan.Set("committed", res.Committed)
			runSpan.Set("cycleAccounting", tel.Account.Snapshot())
		}
		runSpan.End()
	}
	if err != nil {
		return err
	}
	if rec != nil {
		rec.Render(os.Stdout)
		fmt.Println()
	}

	fmt.Printf("%s: %d-way, queue %d, %d regs/file, %s exceptions, %s cache\n",
		p.Name, o.width, o.queue, o.regs, o.model, o.ckind)
	fmt.Printf("  cycles              %12d\n", res.Cycles)
	fmt.Printf("  committed           %12d   (commit IPC %.3f)\n", res.Committed, res.CommitIPC())
	fmt.Printf("  executed            %12d   (issue IPC %.3f)\n", res.Issued, res.IssueIPC())
	fmt.Printf("  executed loads      %12d   (miss rate %.1f%%, %d forwarded)\n",
		res.IssuedLoads, 100*res.LoadMissRate(), res.ForwardedLoads)
	fmt.Printf("  executed cond br    %12d   (mispredict rate %.1f%%)\n",
		res.IssuedCondBr, 100*res.MispredictRate())
	fmt.Printf("  no-free-reg cycles  %12d   (%.1f%% of run time)\n",
		res.NoFreeRegCycles, 100*res.NoFreeRegFraction())
	fmt.Printf("  halted: %v, checksum %#016x\n", res.Halted, res.Checksum)
	if o.track {
		for f := 0; f < 2; f++ {
			d := stats.Normalize(res.Live[f].TotalLive())
			fmt.Printf("  %s live registers: p50=%d p90=%d p100=%d\n",
				isa.RegFile(f), d.Percentile(0.5), d.Percentile(0.9), d.FullCoveragePoint())
		}
	}
	if o.account {
		fmt.Printf("\n%v\n", &tel.Account)
		fmt.Printf("latency (cycles):\n")
		fmt.Printf("  dispatch→issue      %v\n", &tel.DispatchToIssue)
		fmt.Printf("  issue→complete      %v\n", &tel.IssueToComplete)
		fmt.Printf("  complete→commit     %v\n", &tel.CompleteToCommit)
		fmt.Printf("  load-miss           %v\n", &tel.LoadMissLatency)
	}

	if o.verify {
		// Re-simulate on a clean config (no observers) with the runtime
		// invariant checker on, comparing against the reference interpreter.
		vcfg := cfg
		vcfg.Tracer = nil
		vcfg.CounterSampler = nil
		vcfg.Telemetry = nil
		vcfg.CheckInvariants = true
		if err := regsim.Verify(vcfg, p, o.budget); err != nil {
			return fmt.Errorf("verification failed: %w", err)
		}
		fmt.Println("verify: OK — committed stream, registers, memory, and rename state match the reference interpreter")
		// The checkpoint round-trip leg: snapshot a warm-up prefix, push it
		// through the on-disk JSON envelope, resume, and require the finished
		// Result to be byte-identical to the cold run's. The invariant
		// checker stays off here — the leg compares two pipeline runs, and
		// the differential above already audited this configuration.
		vcfg.CheckInvariants = false
		if err := regsim.VerifyCheckpoint(vcfg, p, o.budget, o.budget/2); err != nil {
			return fmt.Errorf("verification failed: %w", err)
		}
		fmt.Println("verify: OK — checkpoint resume is byte-identical to the cold run")
	}

	if o.metricsOut != "" {
		if err := writeMetrics(o.metricsOut, bench, o, res, tel); err != nil {
			return err
		}
	}
	if ct != nil {
		root.End()
		ct.AttachSpans(root.Snapshot())
		f, err := os.Create(o.chromeTrace)
		if err != nil {
			return err
		}
		if err := ct.Export(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("\nwrote %s: %d instructions (%d dropped by the capture cap); load it at ui.perfetto.dev\n",
			o.chromeTrace, ct.Instructions(), ct.Dropped())
	}
	return nil
}

// portJSON is the metrics-snapshot form of one register file's port usage.
type portJSON struct {
	// Reads[n]/Writes[n] count cycles using exactly n ports; the final
	// entry is open-ended (see PortHist.Saturated).
	Reads     []int64 `json:"reads"`
	Writes    []int64 `json:"writes"`
	Saturated bool    `json:"saturated"`
}

func trimZeros(h []int64) []int64 {
	n := len(h)
	for n > 0 && h[n-1] == 0 {
		n--
	}
	return h[:n]
}

// metricsSnapshot is the `-metrics-out` schema (documented in README.md).
type metricsSnapshot struct {
	Benchmark string `json:"benchmark"`
	Width     int    `json:"width"`
	QueueSize int    `json:"queueSize"`
	Regs      int    `json:"regsPerFile"`
	Model     string `json:"model"`
	Cache     string `json:"cache"`

	Cycles    int64   `json:"cycles"`
	Committed int64   `json:"committed"`
	Issued    int64   `json:"issued"`
	CommitIPC float64 `json:"commitIPC"`

	Telemetry telemetry.Snapshot  `json:"telemetry"`
	Ports     map[string]portJSON `json:"ports"`
}

func writeMetrics(path, bench string, o runOpts, res *regsim.Result, tel *regsim.Telemetry) error {
	snap := metricsSnapshot{
		Benchmark: bench,
		Width:     o.width, QueueSize: o.queue, Regs: o.regs,
		Model: o.model, Cache: o.ckind,
		Cycles: res.Cycles, Committed: res.Committed, Issued: res.Issued,
		CommitIPC: res.CommitIPC(),
		Telemetry: tel.Snapshot(),
		Ports:     make(map[string]portJSON, 2),
	}
	for f := 0; f < 2; f++ {
		snap.Ports[isa.RegFile(f).String()] = portJSON{
			Reads:     trimZeros(res.Ports[f].Reads),
			Writes:    trimZeros(res.Ports[f].Writes),
			Saturated: res.Ports[f].Saturated(),
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
