// Command regsim runs one benchmark on one machine configuration and prints
// the statistics block.
//
// Usage:
//
//	regsim [flags] <benchmark>
//
// Benchmarks: compress doduc espresso gcc1 mdljdp2 mdljsp2 ora su2cor
// tomcatv; random:<seed> for a generated structured program; or
// asm:<path> to assemble and run a .s file (see internal/asm for syntax).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"regsim"
	"regsim/internal/asm"
	"regsim/internal/isa"
	"regsim/internal/stats"
	"regsim/internal/trace"
)

func main() {
	width := flag.Int("width", 4, "issue width (4 or 8)")
	queue := flag.Int("queue", 0, "dispatch queue entries (0 = 8×width, the paper's cost-effective size)")
	regs := flag.Int("regs", 80, "physical registers per file")
	model := flag.String("model", "precise", "exception model: precise or imprecise")
	ckind := flag.String("cache", "lockup-free", "data cache: perfect, lockup, or lockup-free")
	budget := flag.Int64("n", 200_000, "committed-instruction budget")
	track := flag.Bool("live", false, "track live-register histograms and print percentiles")
	traceN := flag.Int("trace", 0, "render a pipeline diagram of the first N instructions")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintf(os.Stderr, "usage: regsim [flags] <benchmark>\nbenchmarks: %s, random:<seed>, asm:<path>\n",
			strings.Join(regsim.Workloads(), " "))
		flag.PrintDefaults()
		os.Exit(2)
	}

	if err := run(flag.Arg(0), *width, *queue, *regs, *model, *ckind, *budget, *track, *traceN); err != nil {
		fmt.Fprintf(os.Stderr, "regsim: %v\n", err)
		os.Exit(1)
	}
}

func run(bench string, width, queue, regs int, model, ckind string, budget int64, track bool, traceN int) error {
	var p *regsim.Program
	var err error
	if path, ok := strings.CutPrefix(bench, "asm:"); ok {
		src, rerr := os.ReadFile(path)
		if rerr != nil {
			return rerr
		}
		if p, err = asm.Parse(path, string(src)); err != nil {
			return err
		}
	} else if seedStr, ok := strings.CutPrefix(bench, "random:"); ok {
		seed, perr := strconv.ParseInt(seedStr, 10, 64)
		if perr != nil {
			return fmt.Errorf("bad random seed %q", seedStr)
		}
		p = regsim.RandomProgram(seed)
	} else if p, err = regsim.Workload(bench); err != nil {
		return err
	}

	cfg := regsim.DefaultConfig()
	cfg.Width = width
	if queue == 0 {
		queue = 8 * width
	}
	cfg.QueueSize = queue
	cfg.RegsPerFile = regs
	cfg.TrackLiveRegisters = track
	switch model {
	case "precise":
		cfg.Model = regsim.Precise
	case "imprecise":
		cfg.Model = regsim.Imprecise
	default:
		return fmt.Errorf("unknown exception model %q", model)
	}
	switch ckind {
	case "perfect":
		cfg.DCache = cfg.DCache.WithKind(regsim.PerfectCache)
	case "lockup":
		cfg.DCache = cfg.DCache.WithKind(regsim.LockupCache)
	case "lockup-free":
		cfg.DCache = cfg.DCache.WithKind(regsim.LockupFreeCache)
	default:
		return fmt.Errorf("unknown cache organisation %q", ckind)
	}

	var rec *trace.Recorder
	if traceN > 0 {
		rec = trace.NewRecorder(traceN)
		cfg.Tracer = rec.Hook()
	}
	res, err := regsim.Run(cfg, p, budget)
	if err != nil {
		return err
	}
	if rec != nil {
		rec.Render(os.Stdout)
		fmt.Println()
	}

	fmt.Printf("%s: %d-way, queue %d, %d regs/file, %s exceptions, %s cache\n",
		p.Name, width, queue, regs, model, ckind)
	fmt.Printf("  cycles              %12d\n", res.Cycles)
	fmt.Printf("  committed           %12d   (commit IPC %.3f)\n", res.Committed, res.CommitIPC())
	fmt.Printf("  executed            %12d   (issue IPC %.3f)\n", res.Issued, res.IssueIPC())
	fmt.Printf("  executed loads      %12d   (miss rate %.1f%%, %d forwarded)\n",
		res.IssuedLoads, 100*res.LoadMissRate(), res.ForwardedLoads)
	fmt.Printf("  executed cond br    %12d   (mispredict rate %.1f%%)\n",
		res.IssuedCondBr, 100*res.MispredictRate())
	fmt.Printf("  no-free-reg cycles  %12d   (%.1f%% of run time)\n",
		res.NoFreeRegCycles, 100*res.NoFreeRegFraction())
	fmt.Printf("  halted: %v, checksum %#016x\n", res.Halted, res.Checksum)
	if track {
		for f := 0; f < 2; f++ {
			d := stats.Normalize(res.Live[f].TotalLive())
			fmt.Printf("  %s live registers: p50=%d p90=%d p100=%d\n",
				isa.RegFile(f), d.Percentile(0.5), d.Percentile(0.9), d.FullCoveragePoint())
		}
	}
	return nil
}
