package main_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"regsim/internal/cmdtest"
)

// TestExitCodes pins the process contract: malformed flags and arguments are
// usage errors (exit 2), failures while doing well-formed work are runtime
// errors (exit 1), success is 0.
func TestExitCodes(t *testing.T) {
	bin := cmdtest.Build(t, "regsim")
	// A regular file where -checkpoint-dir wants a directory.
	notADir := filepath.Join(t.TempDir(), "file")
	if err := os.WriteFile(notADir, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"no benchmark", nil, 2},
		{"extra arguments", []string{"compress", "doduc"}, 2},
		{"unknown benchmark", []string{"not-a-benchmark"}, 2},
		{"unknown flag", []string{"-no-such-flag", "compress"}, 2},
		{"bad width", []string{"-width", "5", "compress"}, 2},
		{"bad model", []string{"-model", "fuzzy", "compress"}, 2},
		{"bad cache", []string{"-cache", "write-through", "compress"}, 2},
		{"bad budget", []string{"-n", "0", "compress"}, 2},
		{"negative regs", []string{"-regs", "-1", "compress"}, 2},
		{"bad random seed", []string{"random:notanumber"}, 2},
		{"uncreatable memprofile", []string{"-memprofile", "/nonexistent-dir/heap.pprof", "-n", "2000", "compress"}, 2},
		{"sample rate one", []string{"-sample", "1", "-n", "2000", "compress"}, 2},
		{"sample rate negative", []string{"-sample", "-0.2", "-n", "2000", "compress"}, 2},
		{"sample rate over one", []string{"-sample", "1.5", "-n", "2000", "compress"}, 2},
		{"checkpoint dir is a file", []string{"-checkpoint-dir", notADir, "-n", "2000", "compress"}, 2},
		{"success with sample", []string{"-sample", "0.25", "-n", "2000", "compress"}, 0},
		{"missing asm file", []string{"asm:/nonexistent/prog.s"}, 1},
		{"success", []string{"-n", "2000", "compress"}, 0},
		{"success with verify", []string{"-n", "2000", "-verify", "compress"}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, out := cmdtest.Run(t, bin, tc.args...)
			if code != tc.want {
				t.Fatalf("exit %d, want %d\n%s", code, tc.want, out)
			}
		})
	}
}

// TestMemProfile: -memprofile must leave a non-empty pprof heap profile
// behind on success.
func TestMemProfile(t *testing.T) {
	bin := cmdtest.Build(t, "regsim")
	path := filepath.Join(t.TempDir(), "heap.pprof")
	code, out := cmdtest.Run(t, bin, "-n", "2000", "-memprofile", path, "compress")
	if code != 0 {
		t.Fatalf("exit %d\n%s", code, out)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatalf("no heap profile written: %v", err)
	}
	if fi.Size() == 0 {
		t.Fatal("heap profile is empty")
	}
}

// TestVerifyFlagOutput: -verify must report both oracle verdicts (the
// differential leg and the checkpoint round-trip leg).
func TestVerifyFlagOutput(t *testing.T) {
	bin := cmdtest.Build(t, "regsim")
	code, out := cmdtest.Run(t, bin, "-n", "2000", "-verify", "random:5")
	if code != 0 {
		t.Fatalf("exit %d\n%s", code, out)
	}
	if !strings.Contains(out, "verify: OK — committed stream") {
		t.Fatalf("no differential verdict in output:\n%s", out)
	}
	if !strings.Contains(out, "verify: OK — checkpoint resume") {
		t.Fatalf("no checkpoint round-trip verdict in output:\n%s", out)
	}
}

// statsBlock strips the command's stderr notes ("regsim: ..." lines) from
// combined output, leaving just the printed statistics block.
func statsBlock(out string) string {
	var keep []string
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "regsim: ") {
			continue
		}
		keep = append(keep, line)
	}
	return strings.Join(keep, "\n")
}

// TestCheckpointFlag: a rerun against the same -checkpoint-dir must
// fast-forward (the store reports hits) and print a byte-identical
// statistics block — checkpointing is a speedup, never a result change.
func TestCheckpointFlag(t *testing.T) {
	bin := cmdtest.Build(t, "regsim")
	dir := filepath.Join(t.TempDir(), "ckpts")
	args := []string{"-n", "4000", "-checkpoint-dir", dir, "compress"}
	code, cold := cmdtest.Run(t, bin, args...)
	if code != 0 {
		t.Fatalf("cold run: exit %d\n%s", code, cold)
	}
	code, warm := cmdtest.Run(t, bin, args...)
	if code != 0 {
		t.Fatalf("warm run: exit %d\n%s", code, warm)
	}
	if got, want := statsBlock(warm), statsBlock(cold); got != want {
		t.Errorf("checkpointed rerun changed the statistics block\ncold:\n%s\nwarm:\n%s", want, got)
	}
	if !strings.Contains(warm, "checkpoint store:") {
		t.Errorf("warm run never reported a checkpoint hit:\n%s", warm)
	}
}

// TestSampleFlagOutput: a sampled run must say its statistics are estimates
// and still report the full commit budget.
func TestSampleFlagOutput(t *testing.T) {
	bin := cmdtest.Build(t, "regsim")
	code, out := cmdtest.Run(t, bin, "-n", "4000", "-sample", "0.25", "compress")
	if code != 0 {
		t.Fatalf("exit %d\n%s", code, out)
	}
	if !strings.Contains(out, "extrapolated estimates") {
		t.Errorf("sampled run did not flag its output as an estimate:\n%s", out)
	}
	if !strings.Contains(out, " 4000   (commit IPC") {
		t.Errorf("sampled run does not report the full commit budget:\n%s", out)
	}
}
