package main_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"regsim/internal/cmdtest"
)

// TestExitCodes pins the process contract: malformed flags and arguments are
// usage errors (exit 2), failures while doing well-formed work are runtime
// errors (exit 1), success is 0.
func TestExitCodes(t *testing.T) {
	bin := cmdtest.Build(t, "regsim")
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"no benchmark", nil, 2},
		{"extra arguments", []string{"compress", "doduc"}, 2},
		{"unknown benchmark", []string{"not-a-benchmark"}, 2},
		{"unknown flag", []string{"-no-such-flag", "compress"}, 2},
		{"bad width", []string{"-width", "5", "compress"}, 2},
		{"bad model", []string{"-model", "fuzzy", "compress"}, 2},
		{"bad cache", []string{"-cache", "write-through", "compress"}, 2},
		{"bad budget", []string{"-n", "0", "compress"}, 2},
		{"negative regs", []string{"-regs", "-1", "compress"}, 2},
		{"bad random seed", []string{"random:notanumber"}, 2},
		{"uncreatable memprofile", []string{"-memprofile", "/nonexistent-dir/heap.pprof", "-n", "2000", "compress"}, 2},
		{"missing asm file", []string{"asm:/nonexistent/prog.s"}, 1},
		{"success", []string{"-n", "2000", "compress"}, 0},
		{"success with verify", []string{"-n", "2000", "-verify", "compress"}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, out := cmdtest.Run(t, bin, tc.args...)
			if code != tc.want {
				t.Fatalf("exit %d, want %d\n%s", code, tc.want, out)
			}
		})
	}
}

// TestMemProfile: -memprofile must leave a non-empty pprof heap profile
// behind on success.
func TestMemProfile(t *testing.T) {
	bin := cmdtest.Build(t, "regsim")
	path := filepath.Join(t.TempDir(), "heap.pprof")
	code, out := cmdtest.Run(t, bin, "-n", "2000", "-memprofile", path, "compress")
	if code != 0 {
		t.Fatalf("exit %d\n%s", code, out)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatalf("no heap profile written: %v", err)
	}
	if fi.Size() == 0 {
		t.Fatal("heap profile is empty")
	}
}

// TestVerifyFlagOutput: -verify must report the oracle verdict.
func TestVerifyFlagOutput(t *testing.T) {
	bin := cmdtest.Build(t, "regsim")
	code, out := cmdtest.Run(t, bin, "-n", "2000", "-verify", "random:5")
	if code != 0 {
		t.Fatalf("exit %d\n%s", code, out)
	}
	if !strings.Contains(out, "verify: OK") {
		t.Fatalf("no verification verdict in output:\n%s", out)
	}
}
