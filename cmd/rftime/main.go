// Command rftime explores the multiported register-file cycle-time model
// (paper §3.4, Figure 10's timing curves).
//
// Usage:
//
//	rftime [-read N -write N] [-regs list]     # explicit ports
//	rftime [-width 4|8] [-fp] [-regs list]     # the paper's provisioning
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"regsim"
)

// fatalUsage reports a bad flag combination and exits with the
// conventional usage status.
func fatalUsage(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rftime: "+format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}

func main() {
	width := flag.Int("width", 4, "issue width used to derive ports (ignored when -read/-write set)")
	fp := flag.Bool("fp", false, "floating-point file (half the ports)")
	read := flag.Int("read", 0, "explicit read ports")
	write := flag.Int("write", 0, "explicit write ports")
	regList := flag.String("regs", "32,48,64,80,96,128,160,256", "comma-separated register counts")
	flag.Parse()
	if flag.NArg() != 0 {
		fatalUsage("unexpected arguments %q (rftime is flag-driven)", flag.Args())
	}

	// Validate the port flags before touching the model: a malformed flag is
	// a usage error (exit 2), not a simulation result.
	if *read < 0 || *write < 0 {
		fatalUsage("invalid ports -read %d -write %d: port counts cannot be negative", *read, *write)
	}
	explicitPorts := *read > 0 || *write > 0
	if explicitPorts && (*read == 0 || *write == 0) {
		fatalUsage("explicit ports need both -read and -write (got -read %d -write %d)", *read, *write)
	}
	if !explicitPorts && *width != 4 && *width != 8 {
		fatalUsage("invalid -width %d: the provisioning model covers issue widths 4 and 8 (use -read/-write for other port counts)", *width)
	}

	ports := regsim.PortsForWidth(*width, *fp)
	if explicitPorts {
		ports = regsim.TimingPorts{Read: *read, Write: *write}
	}
	params := regsim.DefaultTimingParams()

	fmt.Printf("register file timing, %d read / %d write ports (0.5µm model)\n", ports.Read, ports.Write)
	fmt.Printf("%6s %10s %10s %10s %10s %10s %10s %12s\n",
		"regs", "decode", "wordline", "bitline", "sense+out", "access", "cycle", "area(mm²)")
	for _, field := range strings.Split(*regList, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(field))
		if err != nil || n < 1 {
			fatalUsage("invalid -regs entry %q: want a positive integer", field)
		}
		d := params.Delays(n, ports)
		g := params.Geometry(n, ports)
		fmt.Printf("%6d %9.3f %10.3f %10.3f %10.3f %10.3f %10.3f %12.3f\n",
			n, d.Decode, d.Wordline, d.Bitline, d.Sense+d.Output, d.Access, d.Cycle, g.AreaSquareMM)
	}
}
