package main_test

import (
	"testing"

	"regsim/internal/cmdtest"
)

// TestExitCodes pins the process contract: malformed flags are usage errors
// (exit 2), success is 0. rftime has no runtime failure mode — the timing
// model is pure arithmetic.
func TestExitCodes(t *testing.T) {
	bin := cmdtest.Build(t, "rftime")
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"positional arguments", []string{"extra"}, 2},
		{"unknown flag", []string{"-no-such-flag"}, 2},
		{"bad regs entry", []string{"-regs", "32,zero,64"}, 2},
		{"negative ports", []string{"-read", "-1", "-write", "4"}, 2},
		{"read without write", []string{"-read", "8"}, 2},
		{"bad width", []string{"-width", "6"}, 2},
		{"success", nil, 0},
		{"success explicit ports", []string{"-read", "8", "-write", "4", "-regs", "64,128"}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, out := cmdtest.Run(t, bin, tc.args...)
			if code != tc.want {
				t.Fatalf("exit %d, want %d\n%s", code, tc.want, out)
			}
		})
	}
}
