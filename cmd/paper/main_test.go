package main_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"regsim/internal/cmdtest"
)

// TestExitCodes pins the process contract: malformed flags and arguments
// (including an unknown experiment name, caught before any sweeping starts)
// are usage errors (exit 2); success is 0.
func TestExitCodes(t *testing.T) {
	bin := cmdtest.Build(t, "paper")
	// A regular file where -cache-dir wants a directory.
	notADir := filepath.Join(t.TempDir(), "file")
	if err := os.WriteFile(notADir, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"no experiment", nil, 2},
		{"extra arguments", []string{"table1", "fig3"}, 2},
		{"unknown experiment", []string{"fig99"}, 2},
		{"unknown flag", []string{"-no-such-flag", "table1"}, 2},
		{"bad jobs", []string{"-jobs", "0", "table1"}, 2},
		{"bad budget", []string{"-n", "0", "table1"}, 2},
		{"bad cache dir", []string{"-cache-dir", notADir, "table1"}, 2},
		{"bad checkpoint dir", []string{"-checkpoint-dir", notADir, "-no-cache", "table1"}, 2},
		{"sample rate one", []string{"-sample", "1", "-no-cache", "table1"}, 2},
		{"sample rate negative", []string{"-sample", "-0.2", "-no-cache", "table1"}, 2},
		{"sample rate over one", []string{"-sample", "1.5", "-no-cache", "table1"}, 2},
		{"band too wide", []string{"-estimate", "-prune-band", "1.5", "fig10"}, 2},
		{"band zero", []string{"-estimate", "-prune-band", "0", "fig10"}, 2},
		{"band negative", []string{"-estimate", "-prune-band", "-0.1", "fig10"}, 2},
		{"estimate off fig10", []string{"-estimate", "table1"}, 2},
		{"success", []string{"-n", "500", "-no-cache", "table1"}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, out := cmdtest.Run(t, bin, tc.args...)
			if code != tc.want {
				t.Fatalf("exit %d, want %d\n%s", code, tc.want, out)
			}
		})
	}
}

// TestCheckpointedFig6ByteIdentical is the CLI-level byte-identity contract:
// fig6 rendered plain, rendered cold under a fresh -checkpoint-dir, and
// rendered warm over the populated store must produce identical bytes on
// stdout — fast-forwarding may only change how long the sweep takes.
func TestCheckpointedFig6ByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the fig6 sweep three times")
	}
	bin := cmdtest.Build(t, "paper")
	dir := filepath.Join(t.TempDir(), "ckpts")
	run := func(args ...string) string {
		t.Helper()
		code, out := cmdtest.Run(t, bin, args...)
		if code != 0 {
			t.Fatalf("exit %d\n%s", code, out)
		}
		// Drop the timing footer (and any stderr notes): wall-clock varies.
		var keep []string
		for _, line := range strings.Split(out, "\n") {
			if strings.HasPrefix(line, "[") || strings.HasPrefix(line, "paper: ") {
				continue
			}
			keep = append(keep, line)
		}
		return strings.Join(keep, "\n")
	}
	plain := run("-n", "4000", "-no-cache", "fig6")
	cold := run("-n", "4000", "-no-cache", "-checkpoint-dir", dir, "fig6")
	warm := run("-n", "4000", "-no-cache", "-checkpoint-dir", dir, "fig6")
	if cold != plain {
		t.Errorf("checkpointed cold sweep drifted from the plain sweep\nplain:\n%s\ncold:\n%s", plain, cold)
	}
	if warm != plain {
		t.Errorf("checkpointed warm sweep drifted from the plain sweep\nplain:\n%s\nwarm:\n%s", plain, warm)
	}
}

// TestSampledSmoke: a sampled sweep completes and renders the same table
// shape as the exact one (the values are estimates; accuracy is bounded by
// internal/exper's TestSampledFig6Error, not here).
func TestSampledSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a sampled fig6 sweep")
	}
	bin := cmdtest.Build(t, "paper")
	code, out := cmdtest.Run(t, bin, "-n", "4000", "-sample", "0.25", "-no-cache", "fig6")
	if code != 0 {
		t.Fatalf("exit %d\n%s", code, out)
	}
	for _, want := range []string{"Figure 6", "4-way issue", "8-way issue"} {
		if !strings.Contains(out, want) {
			t.Errorf("sampled fig6 output missing %q:\n%s", want, out)
		}
	}
}

// TestEstimatePrunedSmoke runs the twin-guided fig10 end to end at a tiny
// budget: exit 0, and the rendering names what was pruned, what was kept,
// and the per-curve peaks.
func TestEstimatePrunedSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full pruned sweep")
	}
	bin := cmdtest.Build(t, "paper")
	code, out := cmdtest.Run(t, bin, "-n", "400", "-no-cache", "-estimate", "fig10")
	if code != 0 {
		t.Fatalf("exit %d\n%s", code, out)
	}
	for _, want := range []string{"twin-pruned", "peak:", "grid specs"} {
		if !strings.Contains(out, want) {
			t.Errorf("pruned fig10 output missing %q:\n%s", want, out)
		}
	}
}
