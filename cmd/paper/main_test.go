package main_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"regsim/internal/cmdtest"
)

// TestExitCodes pins the process contract: malformed flags and arguments
// (including an unknown experiment name, caught before any sweeping starts)
// are usage errors (exit 2); success is 0.
func TestExitCodes(t *testing.T) {
	bin := cmdtest.Build(t, "paper")
	// A regular file where -cache-dir wants a directory.
	notADir := filepath.Join(t.TempDir(), "file")
	if err := os.WriteFile(notADir, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"no experiment", nil, 2},
		{"extra arguments", []string{"table1", "fig3"}, 2},
		{"unknown experiment", []string{"fig99"}, 2},
		{"unknown flag", []string{"-no-such-flag", "table1"}, 2},
		{"bad jobs", []string{"-jobs", "0", "table1"}, 2},
		{"bad budget", []string{"-n", "0", "table1"}, 2},
		{"bad cache dir", []string{"-cache-dir", notADir, "table1"}, 2},
		{"band too wide", []string{"-estimate", "-prune-band", "1.5", "fig10"}, 2},
		{"band zero", []string{"-estimate", "-prune-band", "0", "fig10"}, 2},
		{"band negative", []string{"-estimate", "-prune-band", "-0.1", "fig10"}, 2},
		{"estimate off fig10", []string{"-estimate", "table1"}, 2},
		{"success", []string{"-n", "500", "-no-cache", "table1"}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, out := cmdtest.Run(t, bin, tc.args...)
			if code != tc.want {
				t.Fatalf("exit %d, want %d\n%s", code, tc.want, out)
			}
		})
	}
}

// TestEstimatePrunedSmoke runs the twin-guided fig10 end to end at a tiny
// budget: exit 0, and the rendering names what was pruned, what was kept,
// and the per-curve peaks.
func TestEstimatePrunedSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full pruned sweep")
	}
	bin := cmdtest.Build(t, "paper")
	code, out := cmdtest.Run(t, bin, "-n", "400", "-no-cache", "-estimate", "fig10")
	if code != 0 {
		t.Fatalf("exit %d\n%s", code, out)
	}
	for _, want := range []string{"twin-pruned", "peak:", "grid specs"} {
		if !strings.Contains(out, want) {
			t.Errorf("pruned fig10 output missing %q:\n%s", want, out)
		}
	}
}
