package main_test

import (
	"os"
	"path/filepath"
	"testing"

	"regsim/internal/cmdtest"
)

// TestExitCodes pins the process contract: malformed flags and arguments
// (including an unknown experiment name, caught before any sweeping starts)
// are usage errors (exit 2); success is 0.
func TestExitCodes(t *testing.T) {
	bin := cmdtest.Build(t, "paper")
	// A regular file where -cache-dir wants a directory.
	notADir := filepath.Join(t.TempDir(), "file")
	if err := os.WriteFile(notADir, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"no experiment", nil, 2},
		{"extra arguments", []string{"table1", "fig3"}, 2},
		{"unknown experiment", []string{"fig99"}, 2},
		{"unknown flag", []string{"-no-such-flag", "table1"}, 2},
		{"bad jobs", []string{"-jobs", "0", "table1"}, 2},
		{"bad budget", []string{"-n", "0", "table1"}, 2},
		{"bad cache dir", []string{"-cache-dir", notADir, "table1"}, 2},
		{"success", []string{"-n", "500", "-no-cache", "table1"}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, out := cmdtest.Run(t, bin, tc.args...)
			if code != tc.want {
				t.Fatalf("exit %d, want %d\n%s", code, tc.want, out)
			}
		})
	}
}
