// Command paper regenerates the tables and figures of Farkas, Jouppi & Chow,
// "Register File Design Considerations in Dynamically Scheduled Processors"
// (WRL 95/10 / HPCA'96).
//
// Usage:
//
//	paper [-n budget] [-jobs N] [-cache-dir dir] [-v] table1|fig3|fig4|fig5|fig6|fig7|fig8|fig10|findings|regreq|ports|ablations|all
//
// -n sets the committed-instruction budget per simulation (default 200000;
// the paper ran 23M–910M instructions per benchmark, but the distributions
// and averages converge much earlier for the synthetic stand-ins).
//
// Sweeps run on the parallel sweep engine: -jobs bounds the number of
// concurrent simulations (default GOMAXPROCS; output is byte-identical
// regardless), and completed results persist in -cache-dir (default under
// the user cache directory), making reruns at the same budget near-instant.
// -no-cache bypasses the store.
//
// -estimate switches fig10 to the twin-guided pruned sweep: the analytical
// twin predicts BIPS for the whole register grid, and only the points
// predicted within -prune-band of each curve's peak (plus a seeded audit
// sample) are simulated exactly. The band must lie in (0, 1).
//
// -checkpoint-dir attaches the architectural checkpoint store (shared with
// cmd/regsim): sweeps capture mid-run machine snapshots at milestone commit
// counts and fast-forward configurations over any compatible prefix —
// including across processes and budgets — with bit-identical output.
//
// -sample <rate in (0,1)> switches sweeps to sampled simulation: each run
// simulates only that fraction of its budget and extrapolates the rest with
// help from the analytical twin, so figures render in a fraction of the
// time but carry estimation error (bounds in EXPERIMENTS.md) and never
// enter the result cache. Tracked (live-register) runs always run exactly.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"regsim/internal/ckpt"
	"regsim/internal/exper"
	"regsim/internal/sweep/rescache"
	"regsim/internal/telemetry"
	"regsim/internal/twin"
)

// defaultCacheDir places the persistent result cache under the OS user
// cache directory; empty (caching off) when the platform reports none.
func defaultCacheDir() string {
	base, err := os.UserCacheDir()
	if err != nil {
		return ""
	}
	return filepath.Join(base, "regsim", "results")
}

func main() {
	budget := flag.Int64("n", 200_000, "committed instructions per simulation")
	jobs := flag.Int("jobs", runtime.GOMAXPROCS(0), "concurrent simulations during sweeps")
	cacheDir := flag.String("cache-dir", defaultCacheDir(), "persistent result-cache directory (empty disables caching)")
	noCache := flag.Bool("no-cache", false, "bypass the persistent result cache")
	verbose := flag.Bool("v", false, "print a line per completed simulation")
	progress := flag.Bool("progress", false, "print in-run heartbeats (cycles, committed, IPC, ETA) for long sweeps")
	plots := flag.Bool("plots", false, "also render figures as ASCII charts")
	asJSON := flag.Bool("json", false, "emit the experiment's data as JSON instead of tables")
	pruneDefaults := exper.DefaultPruneOptions(nil)
	estimate := flag.Bool("estimate", false, "fig10 only: twin-guided pruned sweep (simulate just the predicted-competitive band)")
	pruneBand := flag.Float64("prune-band", pruneDefaults.Band, "with -estimate: keep points predicted within this fraction of each curve's peak, in (0, 1)")
	ckptDir := flag.String("checkpoint-dir", "", "architectural checkpoint directory shared with cmd/regsim: capture warm-up snapshots and fast-forward over compatible ones, bit-identically (empty disables checkpointing)")
	sample := flag.Float64("sample", 0, "sampled simulation: each run simulates this fraction of its budget, in (0,1), and extrapolates the rest (figures become estimates; 0 disables)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: paper [-n budget] [-jobs N] [-cache-dir dir] [-checkpoint-dir dir] [-sample rate] [-v] [-progress] [-estimate [-prune-band f]] table1|fig3|fig4|fig5|fig6|fig7|fig8|fig10|findings|regreq|ports|ablations|all\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	// Reject malformed sweep parameters with a usage error rather than
	// handing them to the engine: the flag is wrong, not the sweep.
	if *jobs < 1 {
		fatalUsage("invalid -jobs %d: the sweep needs at least one worker", *jobs)
	}
	if *budget < 1 {
		fatalUsage("invalid -n %d: each simulation must commit at least one instruction", *budget)
	}
	// An unknown experiment name is a usage error too — caught before any
	// sweeping starts, so a typo cannot burn a long run first.
	if !knownExperiment(flag.Arg(0)) {
		fatalUsage("unknown experiment %q (want %s)", flag.Arg(0), strings.Join(experimentNames, "|"))
	}
	// The pruning band gates which points simulate at all, so a malformed
	// value is a usage error, not something to clamp silently.
	if *pruneBand <= 0 || *pruneBand >= 1 {
		fatalUsage("invalid -prune-band %v: the band must lie in (0, 1)", *pruneBand)
	}
	if *estimate && flag.Arg(0) != "fig10" {
		fatalUsage("-estimate applies to fig10 only, not %q", flag.Arg(0))
	}
	// The sampling rate gates how much of every run simulates at all, so a
	// malformed value is a usage error, not something to clamp silently.
	if *sample != 0 && (*sample <= 0 || *sample >= 1) {
		fatalUsage("invalid -sample %v: the sampling rate must lie in (0, 1), or 0 to disable", *sample)
	}

	s := exper.NewSuite(*budget)
	s.Jobs = *jobs
	if !*noCache && *cacheDir != "" {
		store, err := rescache.Open(*cacheDir)
		if err != nil {
			fatalUsage("invalid -cache-dir %q: %v", *cacheDir, err)
		}
		s.Cache = store
	}
	if *ckptDir != "" {
		store, err := ckpt.OpenStore(*ckptDir)
		if err != nil {
			fatalUsage("invalid -checkpoint-dir %q: %v", *ckptDir, err)
		}
		s.Checkpoints = store
	}
	if *sample != 0 {
		s.SampleRate = *sample
		// The gap splicer prefers the analytical twin's steady-state IPC over
		// the measured interval's own rate when it has one. The twin
		// calibrates on a second, exact suite that shares this one's stores
		// (its short calibration runs are legitimate exact results), capped
		// at the sweep budget so calibration never outruns the runs it
		// serves.
		exact := exper.NewSuite(*budget)
		exact.Jobs = *jobs
		exact.Cache = s.Cache
		exact.Checkpoints = s.Checkpoints
		model := twin.New(exact)
		model.CalibBudget = twin.DefaultCalibBudget
		if *budget < model.CalibBudget {
			model.CalibBudget = *budget
		}
		s.SampleEstimator = func(ctx context.Context, spec exper.Spec) (float64, error) {
			est, err := model.EstimateContext(ctx, spec)
			if err != nil {
				return 0, err
			}
			return est.IPC, nil
		}
	}
	if *verbose {
		s.Progress = func(line string) { fmt.Fprintln(os.Stderr, line) }
	}
	if *progress {
		s.Heartbeat = func(p telemetry.Progress) {
			if !p.Done { // per-run completion is already the -v line
				fmt.Fprintf(os.Stderr, "  ... %s\n", p)
			}
		}
		// Scale the heartbeat period so a run reports a handful of times
		// regardless of budget (cycles ≈ budget / IPC; IPC ≈ 2–6).
		s.HeartbeatEvery = *budget / 8
		if s.HeartbeatEvery < 1<<12 {
			s.HeartbeatEvery = 1 << 12
		}
	}
	start := time.Now()
	if err := run(s, flag.Arg(0), *plots, *asJSON, *estimate, *pruneBand); err != nil {
		fmt.Fprintf(os.Stderr, "paper: %v\n", err)
		os.Exit(1)
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "%v\n", s.SweepStats())
	}
	fmt.Fprintf(os.Stderr, "\n[%s, budget %d instructions/run, %d jobs]\n", time.Since(start).Round(time.Millisecond), *budget, *jobs)
}

func fatalUsage(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "paper: "+format+"\n", args...)
	os.Exit(2)
}

// experimentNames is the dispatch vocabulary of run, in usage-line order.
var experimentNames = []string{
	"table1", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig10",
	"findings", "regreq", "ports", "ablations", "all",
}

func knownExperiment(name string) bool {
	for _, n := range experimentNames {
		if n == name {
			return true
		}
	}
	return false
}

type printer interface{ Print(io.Writer) }

func run(s *exper.Suite, what string, plots, asJSON bool, estimate bool, band float64) error {
	out := os.Stdout
	emit := func(v printer) error {
		if asJSON {
			enc := json.NewEncoder(out)
			enc.SetIndent("", "  ")
			return enc.Encode(v)
		}
		v.Print(out)
		if p, ok := v.(interface{ Plot(io.Writer) }); ok && plots {
			fmt.Fprintln(out)
			p.Plot(out)
		}
		return nil
	}
	switch what {
	case "table1":
		t, err := s.Table1()
		if err != nil {
			return err
		}
		return emit(t)
	case "fig3":
		f, err := s.Fig3()
		if err != nil {
			return err
		}
		return emit(f)
	case "fig4":
		f, err := s.Fig4()
		if err != nil {
			return err
		}
		return emit(f)
	case "fig5":
		f, err := s.Fig5()
		if err != nil {
			return err
		}
		return emit(f)
	case "fig6":
		f, err := s.Fig6()
		if err != nil {
			return err
		}
		return emit(f)
	case "fig7":
		f, err := s.Fig7()
		if err != nil {
			return err
		}
		return emit(f)
	case "fig8":
		f, err := s.Fig8()
		if err != nil {
			return err
		}
		return emit(f)
	case "fig10":
		if estimate {
			tw := twin.New(s)
			opts := exper.DefaultPruneOptions(func(spec exper.Spec) (float64, error) {
				est, err := tw.Estimate(spec)
				return est.IPC, err
			})
			opts.Band = band
			f, err := s.Fig10Pruned(opts)
			if err != nil {
				return err
			}
			return emit(f)
		}
		f, err := s.Fig10(nil)
		if err != nil {
			return err
		}
		return emit(f)
	case "regreq":
		r, err := s.RegReq()
		if err != nil {
			return err
		}
		return emit(r)
	case "ports":
		p, err := s.Ports()
		if err != nil {
			return err
		}
		return emit(p)
	case "ablations":
		a, err := s.RunAblations()
		if err != nil {
			return err
		}
		return emit(a)
	case "findings":
		f, err := s.Findings(nil, nil, nil)
		if err != nil {
			return err
		}
		return emit(f)
	case "all":
		t1, err := s.Table1()
		if err != nil {
			return err
		}
		t1.Print(out)
		fmt.Fprintln(out)
		f3, err := s.Fig3()
		if err != nil {
			return err
		}
		f3.Print(out)
		fmt.Fprintln(out)
		f4, err := s.Fig4()
		if err != nil {
			return err
		}
		f4.Print(out)
		fmt.Fprintln(out)
		f5, err := s.Fig5()
		if err != nil {
			return err
		}
		f5.Print(out)
		fmt.Fprintln(out)
		f6, err := s.Fig6()
		if err != nil {
			return err
		}
		f6.Print(out)
		fmt.Fprintln(out)
		f7, err := s.Fig7()
		if err != nil {
			return err
		}
		f7.Print(out)
		fmt.Fprintln(out)
		f8, err := s.Fig8()
		if err != nil {
			return err
		}
		f8.Print(out)
		fmt.Fprintln(out)
		f10, err := s.Fig10(f6)
		if err != nil {
			return err
		}
		f10.Print(out)
		fmt.Fprintln(out)
		fd, err := s.Findings(f3, f6, f10)
		if err != nil {
			return err
		}
		fd.Print(out)
	default:
		return fmt.Errorf("unknown experiment %q", what)
	}
	return nil
}
