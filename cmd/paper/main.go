// Command paper regenerates the tables and figures of Farkas, Jouppi & Chow,
// "Register File Design Considerations in Dynamically Scheduled Processors"
// (WRL 95/10 / HPCA'96).
//
// Usage:
//
//	paper [-n budget] [-v] table1|fig3|fig4|fig5|fig6|fig7|fig8|fig10|findings|regreq|ports|ablations|all
//
// -n sets the committed-instruction budget per simulation (default 200000;
// the paper ran 23M–910M instructions per benchmark, but the distributions
// and averages converge much earlier for the synthetic stand-ins).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"regsim/internal/exper"
	"regsim/internal/telemetry"
)

func main() {
	budget := flag.Int64("n", 200_000, "committed instructions per simulation")
	verbose := flag.Bool("v", false, "print a line per completed simulation")
	progress := flag.Bool("progress", false, "print in-run heartbeats (cycles, committed, IPC, ETA) for long sweeps")
	plots := flag.Bool("plots", false, "also render figures as ASCII charts")
	asJSON := flag.Bool("json", false, "emit the experiment's data as JSON instead of tables")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: paper [-n budget] [-v] [-progress] table1|fig3|fig4|fig5|fig6|fig7|fig8|fig10|findings|regreq|ports|ablations|all\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	s := exper.NewSuite(*budget)
	if *verbose {
		s.Progress = func(line string) { fmt.Fprintln(os.Stderr, line) }
	}
	if *progress {
		s.Heartbeat = func(p telemetry.Progress) {
			if !p.Done { // per-run completion is already the -v line
				fmt.Fprintf(os.Stderr, "  ... %s\n", p)
			}
		}
		// Scale the heartbeat period so a run reports a handful of times
		// regardless of budget (cycles ≈ budget / IPC; IPC ≈ 2–6).
		s.HeartbeatEvery = *budget / 8
		if s.HeartbeatEvery < 1<<12 {
			s.HeartbeatEvery = 1 << 12
		}
	}
	start := time.Now()
	if err := run(s, flag.Arg(0), *plots, *asJSON); err != nil {
		fmt.Fprintf(os.Stderr, "paper: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "\n[%s, budget %d instructions/run]\n", time.Since(start).Round(time.Millisecond), *budget)
}

type printer interface{ Print(io.Writer) }

func run(s *exper.Suite, what string, plots, asJSON bool) error {
	out := os.Stdout
	emit := func(v printer) error {
		if asJSON {
			enc := json.NewEncoder(out)
			enc.SetIndent("", "  ")
			return enc.Encode(v)
		}
		v.Print(out)
		if p, ok := v.(interface{ Plot(io.Writer) }); ok && plots {
			fmt.Fprintln(out)
			p.Plot(out)
		}
		return nil
	}
	switch what {
	case "table1":
		t, err := s.Table1()
		if err != nil {
			return err
		}
		return emit(t)
	case "fig3":
		f, err := s.Fig3()
		if err != nil {
			return err
		}
		return emit(f)
	case "fig4":
		f, err := s.Fig4()
		if err != nil {
			return err
		}
		return emit(f)
	case "fig5":
		f, err := s.Fig5()
		if err != nil {
			return err
		}
		return emit(f)
	case "fig6":
		f, err := s.Fig6()
		if err != nil {
			return err
		}
		return emit(f)
	case "fig7":
		f, err := s.Fig7()
		if err != nil {
			return err
		}
		return emit(f)
	case "fig8":
		f, err := s.Fig8()
		if err != nil {
			return err
		}
		return emit(f)
	case "fig10":
		f, err := s.Fig10(nil)
		if err != nil {
			return err
		}
		return emit(f)
	case "regreq":
		r, err := s.RegReq()
		if err != nil {
			return err
		}
		return emit(r)
	case "ports":
		p, err := s.Ports()
		if err != nil {
			return err
		}
		return emit(p)
	case "ablations":
		a, err := s.RunAblations()
		if err != nil {
			return err
		}
		return emit(a)
	case "findings":
		f, err := s.Findings(nil, nil, nil)
		if err != nil {
			return err
		}
		return emit(f)
	case "all":
		t1, err := s.Table1()
		if err != nil {
			return err
		}
		t1.Print(out)
		fmt.Fprintln(out)
		f3, err := s.Fig3()
		if err != nil {
			return err
		}
		f3.Print(out)
		fmt.Fprintln(out)
		f4, err := s.Fig4()
		if err != nil {
			return err
		}
		f4.Print(out)
		fmt.Fprintln(out)
		f5, err := s.Fig5()
		if err != nil {
			return err
		}
		f5.Print(out)
		fmt.Fprintln(out)
		f6, err := s.Fig6()
		if err != nil {
			return err
		}
		f6.Print(out)
		fmt.Fprintln(out)
		f7, err := s.Fig7()
		if err != nil {
			return err
		}
		f7.Print(out)
		fmt.Fprintln(out)
		f8, err := s.Fig8()
		if err != nil {
			return err
		}
		f8.Print(out)
		fmt.Fprintln(out)
		f10, err := s.Fig10(f6)
		if err != nil {
			return err
		}
		f10.Print(out)
		fmt.Fprintln(out)
		fd, err := s.Findings(f3, f6, f10)
		if err != nil {
			return err
		}
		fd.Print(out)
	default:
		return fmt.Errorf("unknown experiment %q", what)
	}
	return nil
}
