// Mycode: the paper's methodology applied to *your* workload. Compose a
// synthetic program with your application's dynamic character (instruction
// mix, working set, branch behaviour, dependence depth) and ask the paper's
// question of it: how many physical registers before performance saturates?
//
//	go run ./examples/mycode
package main

import (
	"fmt"
	"log"

	"regsim"
)

func main() {
	// Say your code looks like a sparse solver: a quarter loads over a
	// 2 MB working set, a third floating point in medium-depth chains,
	// mostly predictable branches.
	prog, err := regsim.Synthetic(regsim.SyntheticParams{
		Name:     "sparse-solver",
		LoadFrac: 0.25, StoreFrac: 0.06, FPFrac: 0.33, BranchFrac: 0.08,
		FootprintBytes: 2 << 20,
		BranchBias:     0.05,
		FPChainDepth:   4,
		Seed:           42,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("sparse-solver stand-in on the 4-way machine:")
	fmt.Printf("%8s %12s %14s %18s\n", "regs", "commit IPC", "est. BIPS", "register-starved")
	params := regsim.DefaultTimingParams()
	bestBIPS, bestRegs := 0.0, 0
	for _, regs := range []int{32, 48, 64, 80, 96, 128, 192, 256} {
		cfg := regsim.DefaultConfig()
		cfg.RegsPerFile = regs
		res, err := regsim.Run(cfg, prog, 80_000)
		if err != nil {
			log.Fatal(err)
		}
		cycle := params.CycleTime(regs, regsim.PortsForWidth(cfg.Width, false))
		bips := regsim.BIPS(res.CommitIPC(), cycle)
		if bips > bestBIPS {
			bestBIPS, bestRegs = bips, regs
		}
		fmt.Printf("%8d %12.2f %14.2f %17.1f%%\n",
			regs, res.CommitIPC(), bips, 100*res.NoFreeRegFraction())
	}
	fmt.Printf("\nBest estimated performance: %.2f BIPS at %d registers per file —\n", bestBIPS, bestRegs)
	fmt.Println("the paper's interior maximum, for a workload it never saw.")
}
