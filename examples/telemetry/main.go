// Telemetry: where do the cycles go? Attach the telemetry sink to a run,
// print the top-down cycle accounting and the stage-latency percentiles,
// watch live progress heartbeats, and write a Perfetto-loadable pipeline
// trace of the first few thousand cycles.
//
//	go run ./examples/telemetry
package main

import (
	"fmt"
	"log"
	"os"

	"regsim"
)

func main() {
	prog, err := regsim.Workload("compress")
	if err != nil {
		log.Fatal(err)
	}

	cfg := regsim.DefaultConfig()

	// 1. The telemetry sink: cycle accounting + latency histograms.
	tel := regsim.NewTelemetry()
	cfg.Telemetry = tel

	// 2. Progress heartbeats, delivered every ProgressEvery cycles.
	cfg.Progress = func(p regsim.RunProgress) {
		fmt.Printf("  %s\n", p)
	}
	cfg.ProgressEvery = 8192

	// 3. A Perfetto trace of cycles [0, 5000).
	ct := regsim.NewChromeTracer(regsim.ChromeTraceOptions{EndCycle: 5000})
	cfg.Tracer = ct.Hook()
	cfg.CounterSampler = ct.CounterHook()
	cfg.CounterEvery = 16

	fmt.Println("compress, 4-way, default machine:")
	res, err := regsim.Run(cfg, prog, 100_000)
	if err != nil {
		log.Fatal(err)
	}

	// The accounting invariant: every cycle in exactly one bucket.
	fmt.Printf("\n%s", tel.Account.String())
	fmt.Printf("\nbuckets sum to %d cycles, run took %d (invariant checked by Run)\n",
		tel.Account.Total(), res.Cycles)

	fmt.Println("\nstage latencies:")
	for _, s := range []struct {
		name string
		h    *regsim.LatencyHistogram
	}{
		{"dispatch→issue ", &tel.DispatchToIssue},
		{"issue→complete ", &tel.IssueToComplete},
		{"complete→commit", &tel.CompleteToCommit},
		{"load miss      ", &tel.LoadMissLatency},
	} {
		fmt.Printf("  %s p50=%-3d p90=%-3d p99=%-3d max=%d\n",
			s.name, s.h.P50(), s.h.P90(), s.h.P99(), s.h.Max())
	}

	f, err := os.Create("pipeline-trace.json")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := ct.Export(f); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwrote pipeline-trace.json (%d instructions) — load it at https://ui.perfetto.dev\n",
		ct.Instructions())
}
