// Command serve demonstrates the simulation-as-a-service layer end to end:
// it hosts a serving instance in-process (the same layer cmd/regsimd wraps),
// then exercises it with the typed client through three phases —
//
//	cold:      a sweep matrix nobody has simulated before;
//	coalesced: four concurrent clients submitting that same matrix while
//	           it is still cold on a second server sharing the cache
//	           directory (each unique spec simulates exactly once);
//	warm:      the same matrix again, answered from the in-memory memo in
//	           microseconds.
//
//	go run ./examples/serve
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"os"
	"sync"
	"time"

	"regsim"
)

// matrix is a small Figure 3-style slice: one benchmark, two widths, a few
// register-file sizes — with one duplicate spec to show in-batch dedup.
func matrix() []regsim.SweepSpec {
	var specs []regsim.SweepSpec
	for _, width := range []int{4, 8} {
		for _, regs := range []int{64, 80, 128} {
			specs = append(specs, regsim.SweepSpec{Bench: "compress", Width: width, Regs: regs})
		}
	}
	return append(specs, specs[0]) // duplicate: sweeps dedup within a batch too
}

// serve stands up one serving instance over a fresh suite attached to the
// shared cache directory, mimicking one regsimd process.
func serve(dir string) (*httptest.Server, error) {
	cache, err := regsim.OpenResultCache(dir)
	if err != nil {
		return nil, err
	}
	suite := regsim.NewSuite(50_000)
	suite.Cache = cache
	srv, err := regsim.NewServer(regsim.ServerConfig{Suite: suite})
	if err != nil {
		return nil, err
	}
	return httptest.NewServer(srv.Handler()), nil
}

func main() {
	dir, err := os.MkdirTemp("", "regsim-serve-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	ctx := context.Background()
	specs := matrix()

	// --- cold: first process, empty cache; every unique spec simulates.
	ts1, err := serve(dir)
	if err != nil {
		log.Fatal(err)
	}
	client := regsim.NewClient(ts1.URL)
	start := time.Now()
	resp, err := client.Sweep(ctx, specs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cold:      %d specs in %v (server elapsed %.0fms)\n",
		resp.Count, time.Since(start).Round(time.Millisecond), resp.ElapsedMS)
	for _, r := range resp.Results[:3] {
		fmt.Printf("           %s w%d regs=%-4d commit IPC %.2f\n",
			r.Spec.Bench, r.Spec.Width, r.Spec.Regs, r.Result.CommitIPC())
	}

	// --- warm: same matrix, same server; pure in-memory memo hits.
	start = time.Now()
	if _, err := client.Sweep(ctx, specs); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("warm:      same matrix in %v\n", time.Since(start).Round(time.Microsecond))

	// --- coalesced: a second "process" shares only the disk cache, so its
	// memo is cold — but four clients racing the same NEW matrix coalesce
	// through the engine's singleflight: each unique spec runs once.
	ts2, err := serve(dir)
	if err != nil {
		log.Fatal(err)
	}
	client2 := regsim.NewClient(ts2.URL)
	fresh := []regsim.SweepSpec{
		{Bench: "ora", Width: 4, Regs: 80},
		{Bench: "ora", Width: 4, Regs: 128},
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := client2.Sweep(ctx, fresh); err != nil {
				log.Print(err)
			}
		}()
	}
	wg.Wait()
	m, err := client2.Metrics(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("coalesced: 4 concurrent clients × %d fresh specs → %d simulations, %d coalesced/memo joins\n",
		len(fresh), m.Sweep.Runs, m.Sweep.Deduped+m.Sweep.MemoHits)

	// The second server answers the FIRST server's matrix from disk: cross-
	// process reuse without re-simulating.
	start = time.Now()
	if _, err := client2.Sweep(ctx, specs); err != nil {
		log.Fatal(err)
	}
	m2, _ := client2.Metrics(ctx)
	fmt.Printf("cross-proc: first server's matrix in %v (%d persistent-cache hits)\n",
		time.Since(start).Round(time.Millisecond), m2.Sweep.CacheHits)

	// Structured refusals: the client gets a typed error it can branch on.
	_, err = client2.Simulate(ctx, regsim.SweepSpec{Bench: "linpack"})
	if apiErr, ok := err.(*regsim.APIError); ok {
		fmt.Printf("refusal:   HTTP %d %s (field %q)\n", apiErr.Status, apiErr.Code, apiErr.Field)
	}

	ts1.Close()
	ts2.Close()
}
