// Memsys: compare the three memory-system organisations of §3.3 — a perfect
// cache, a lockup (blocking) cache, and the lockup-free cache with inverted
// MSHRs — on a miss-heavy workload (Figure 7's mechanism).
//
//	go run ./examples/memsys
package main

import (
	"fmt"
	"log"

	"regsim"
)

func main() {
	prog, err := regsim.Workload("tomcatv")
	if err != nil {
		log.Fatal(err)
	}

	kinds := []struct {
		name string
		kind regsim.CacheKind
	}{
		{"perfect", regsim.PerfectCache},
		{"lockup-free", regsim.LockupFreeCache},
		{"lockup", regsim.LockupCache},
	}

	fmt.Println("tomcatv (a quarter of its loads miss the 64KB cache), 4-way issue, 128 regs:")
	fmt.Printf("%-14s %12s %12s\n", "cache", "commit IPC", "miss rate")
	for _, k := range kinds {
		cfg := regsim.DefaultConfig()
		cfg.RegsPerFile = 128
		cfg.DCache = cfg.DCache.WithKind(k.kind)
		res, err := regsim.Run(cfg, prog, 100_000)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %12.2f %11.1f%%\n", k.name, res.CommitIPC(), 100*res.LoadMissRate())
	}
	fmt.Println("\nThe paper's finding: dynamic scheduling plus aggressive non-blocking")
	fmt.Println("loads gets close to a perfect memory system; a blocking cache does not.")
}
