// Exceptions: compare the precise and imprecise register-freeing models
// (paper §2.2, §3.2). With few registers the imprecise model's earlier
// freeing buys real IPC; with many registers the models converge — which is
// the paper's argument that precise exceptions are cheap.
//
//	go run ./examples/exceptions
package main

import (
	"fmt"
	"log"

	"regsim"
)

func main() {
	prog, err := regsim.Workload("tomcatv")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("tomcatv, 8-way issue, 64-entry queue (the paper's extreme case):")
	fmt.Printf("%8s %14s %14s %10s\n", "regs", "precise IPC", "imprecise IPC", "gap")
	for _, regs := range []int{48, 64, 80, 96, 128, 160, 256} {
		var ipc [2]float64
		for i, model := range []regsim.ExceptionModel{regsim.Precise, regsim.Imprecise} {
			cfg := regsim.DefaultConfig()
			cfg.Width = 8
			cfg.QueueSize = 64
			cfg.RegsPerFile = regs
			cfg.Model = model
			res, err := regsim.Run(cfg, prog, 100_000)
			if err != nil {
				log.Fatal(err)
			}
			ipc[i] = res.CommitIPC()
		}
		gap := 0.0
		if ipc[0] > 0 {
			gap = 100 * (ipc[1] - ipc[0]) / ipc[0]
		}
		fmt.Printf("%8d %14.2f %14.2f %9.1f%%\n", regs, ipc[0], ipc[1], gap)
	}
	fmt.Println("\nBoth runs commit identical architectural results — only the timing of")
	fmt.Println("register reuse differs (verified by the library's equivalence tests).")
}
