// Command sweep demonstrates the parallel sweep engine and the persistent
// result cache: it regenerates Table 1 twice against the same cache
// directory — once cold (simulating across GOMAXPROCS workers, filling the
// cache) and once warm (pure cache hits) — then answers a single ad-hoc
// spec from the same store.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"regsim"
)

func main() {
	dir, err := os.MkdirTemp("", "regsim-sweep-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	for _, pass := range []string{"cold", "warm"} {
		// A fresh Suite and store per pass mimics separate processes:
		// only the on-disk cache carries over.
		cache, err := regsim.OpenResultCache(dir)
		if err != nil {
			log.Fatal(err)
		}
		s := regsim.NewSuite(50_000)
		s.Jobs = 0 // 0 = GOMAXPROCS
		s.Cache = cache

		start := time.Now()
		if _, err := s.Table1(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s pass: Table 1 in %v\n  %v\n", pass, time.Since(start).Round(time.Millisecond), s.SweepStats())
	}

	// Single runs share the same store — this spec matches a Table 1
	// configuration, so it is a cache hit even in a "new process".
	cache, err := regsim.OpenResultCache(dir)
	if err != nil {
		log.Fatal(err)
	}
	s := regsim.NewSuite(50_000)
	s.Cache = cache
	res, err := s.Run(regsim.SweepSpec{
		Bench: "compress", Width: 4, Queue: 32, Regs: 2048,
		Model: regsim.Precise, Cache: regsim.LockupFreeCache,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ad-hoc spec: commit IPC %.2f (%v)\n", res.CommitIPC(), s.SweepStats())
}
