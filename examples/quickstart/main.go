// Quickstart: build a benchmark, run it on the paper's baseline 4-way
// machine, and print the headline statistics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"regsim"
)

func main() {
	// A SPEC92 stand-in workload: compress (integer, cache-missing hash
	// probes, data-dependent branches).
	prog, err := regsim.Workload("compress")
	if err != nil {
		log.Fatal(err)
	}

	// The paper's baseline machine: 4-way issue, 32-entry dispatch queue,
	// 80 physical registers per file, precise exceptions, 64 KB 2-way
	// lockup-free data cache with a 16-cycle fetch latency.
	cfg := regsim.DefaultConfig()

	res, err := regsim.Run(cfg, prog, 200_000)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("compress on the baseline 4-way machine:\n")
	fmt.Printf("  commit IPC      %.2f  (architecturally retired work per cycle)\n", res.CommitIPC())
	fmt.Printf("  issue  IPC      %.2f  (includes speculatively wasted work)\n", res.IssueIPC())
	fmt.Printf("  load miss rate  %.1f%%\n", 100*res.LoadMissRate())
	fmt.Printf("  mispredict rate %.1f%%\n", 100*res.MispredictRate())
	fmt.Printf("  register-starved %.1f%% of cycles\n", 100*res.NoFreeRegFraction())

	// Estimate real performance: divide IPC by the register-file cycle
	// time from the paper's timing model (§3.4).
	params := regsim.DefaultTimingParams()
	cycle := params.CycleTime(cfg.RegsPerFile, regsim.PortsForWidth(cfg.Width, false))
	fmt.Printf("  est. cycle time %.3f ns  →  %.2f BIPS\n", cycle, regsim.BIPS(res.CommitIPC(), cycle))
}
