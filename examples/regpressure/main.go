// Regpressure: the paper's headline experiment in miniature — sweep the
// physical register-file size for one workload and watch commit IPC
// saturate while register starvation melts away (Figure 6's mechanism).
//
//	go run ./examples/regpressure
package main

import (
	"fmt"
	"log"

	"regsim"
)

func main() {
	prog, err := regsim.Workload("su2cor")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("su2cor, 4-way issue, 32-entry queue, precise exceptions:")
	fmt.Printf("%8s %12s %18s\n", "regs", "commit IPC", "no-free-reg cycles")
	for _, regs := range []int{32, 48, 64, 80, 96, 128, 256} {
		cfg := regsim.DefaultConfig()
		cfg.RegsPerFile = regs
		res, err := regsim.Run(cfg, prog, 100_000)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8d %12.2f %17.1f%%\n", regs, res.CommitIPC(), 100*res.NoFreeRegFraction())
	}
	fmt.Println("\nThe paper's finding: a 4-way machine saturates around 80 registers —")
	fmt.Println("beyond that, extra registers only slow the register file down (Figure 10).")
}
