// Pipeline: assemble a small program from text, run it with the pipeline
// tracer attached, and render the cycle-by-cycle D/I/C/R diagram — the
// paper's mechanisms (dispatch-queue waits, divider serialisation,
// misprediction squashes) made visible.
//
//	go run ./examples/pipeline
package main

import (
	"fmt"
	"log"
	"os"

	"regsim"
)

const source = `
; A Newton square-root step like ora's inner loop: the unpipelined divider
; (8 cycles, one unit at 4-way issue) serialises the chain while the
; independent integer work flows around it.
    .float 0x100000 2.0
    .float 0x100008 1.5
    add   r1, r31, 0x100000
    fld   f1, 0(r1)          ; a
    fld   f2, 8(r1)          ; x0
    add   r2, r31, 3         ; three Newton steps
loop:
    fdivs f3, f1, f2         ; a / x
    fadd  f2, f2, f3         ; x += a/x
    add   r3, r3, 1          ; independent integer work
    add   r4, r4, r3
    sub   r2, r2, 1
    bne   r2, loop
    fst   f2, 16(r1)
    halt
`

func main() {
	p, err := regsim.ParseAsm("newton", source)
	if err != nil {
		log.Fatal(err)
	}

	rec := regsim.NewTraceRecorder(40)
	cfg := regsim.DefaultConfig()
	cfg.ICacheMissPenalty = 0 // keep the diagram about the execution core
	cfg.Tracer = rec.Hook()

	res, err := regsim.Run(cfg, p, 1<<20)
	if err != nil {
		log.Fatal(err)
	}

	rec.Render(os.Stdout)
	fmt.Printf("\n%d instructions in %d cycles (%.2f IPC) — watch the fdivs rows queue\n",
		res.Committed, res.Cycles, res.CommitIPC())
	fmt.Println("behind one another: the divider is unpipelined, the paper's ora bottleneck.")
}
