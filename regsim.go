// Package regsim is a cycle-level simulator of dynamically scheduled
// (out-of-order) superscalar processors, built to reproduce
//
//	K.I. Farkas, N.P. Jouppi, P. Chow,
//	"Register File Design Considerations in Dynamically Scheduled
//	Processors", WRL Research Report 95/10 / HPCA 1996.
//
// The library models a 4- or 8-way issue RISC machine with register
// renaming, a unified dispatch queue, greedy oldest-first scheduling,
// McFarling combining branch prediction, speculative (including wrong-path)
// execution, non-blocking loads with an inverted-MSHR lockup-free cache, and
// the paper's two register-freeing exception models (precise and imprecise).
// It also includes the paper's multiported register-file cycle-time model
// and an experiment harness that regenerates every table and figure.
//
// # Quick start
//
//	prog, _ := regsim.Workload("tomcatv")
//	cfg := regsim.DefaultConfig()     // 4-way, 32-entry queue, 80 regs/file
//	res, _ := regsim.Run(cfg, prog, 100_000)
//	fmt.Printf("commit IPC %.2f\n", res.CommitIPC())
//
// The underlying building blocks live in internal packages; this package is
// the stable surface: machine configuration and execution, the benchmark
// workloads, the register-file timing model, and the paper's experiment
// suite (Suite).
package regsim

import (
	"context"

	"regsim/internal/asm"
	"regsim/internal/cache"
	"regsim/internal/ckpt"
	"regsim/internal/cluster"
	"regsim/internal/core"
	"regsim/internal/exper"
	"regsim/internal/obs"
	"regsim/internal/prog"
	"regsim/internal/rename"
	"regsim/internal/rftiming"
	"regsim/internal/server"
	"regsim/internal/sweep/rescache"
	"regsim/internal/telemetry"
	"regsim/internal/trace"
	"regsim/internal/twin"
	"regsim/internal/verify"
	"regsim/internal/workload"
)

// Config selects a machine configuration. It is the experiment axes of the
// paper plus fixed structural parameters; see the field documentation on the
// aliased type.
type Config = core.Config

// Result holds the statistics of one simulation run.
type Result = core.Result

// Program is an executable image for the simulator's Alpha-style ISA.
type Program = prog.Program

// ExceptionModel selects the register-freeing discipline.
type ExceptionModel = rename.Model

// Exception models (paper §2.2).
const (
	// Precise frees a retired register mapping when the retiring
	// instruction commits; the machine can recover exact state at any
	// instruction boundary.
	Precise = rename.Precise
	// Imprecise frees mappings under the weaker completion-based
	// conditions — the paper's lower bound on register requirements.
	Imprecise = rename.Imprecise
)

// CacheKind selects the data-cache organisation.
type CacheKind = cache.Kind

// Data-cache organisations (paper §2.1 and §3.3).
const (
	// PerfectCache always hits.
	PerfectCache = cache.Perfect
	// LockupCache blocks on a miss until the fill completes.
	LockupCache = cache.Lockup
	// LockupFreeCache services unlimited outstanding misses with an
	// inverted-MSHR organisation.
	LockupFreeCache = cache.LockupFree
)

// DefaultConfig returns the paper's baseline 4-way machine: a 32-entry
// dispatch queue, 80 registers per file, precise exceptions, and the 64 KB
// 2-way lockup-free data cache with a 16-cycle fetch latency.
func DefaultConfig() Config { return core.DefaultConfig() }

// Run simulates prog on a machine with the given configuration until the
// program halts or maxCommit instructions have committed.
func Run(cfg Config, p *Program, maxCommit int64) (*Result, error) {
	m, err := core.New(cfg, p)
	if err != nil {
		return nil, err
	}
	return m.Run(maxCommit)
}

// Workload builds one of the built-in SPEC92 stand-in benchmarks by name
// (compress, doduc, espresso, gcc1, mdljdp2, mdljsp2, ora, su2cor, tomcatv).
func Workload(name string) (*Program, error) { return workload.Build(name) }

// Workloads returns the benchmark names in the paper's Table 1 order.
func Workloads() []string { return workload.Names() }

// WorkloadInfo describes a built-in benchmark, including the paper's
// Table 1 reference characteristics that guided its construction.
type WorkloadInfo = workload.Info

// WorkloadByName returns a benchmark's description.
func WorkloadByName(name string) (*WorkloadInfo, error) { return workload.Get(name) }

// SyntheticParams describes a user-composed workload (instruction mix,
// working-set footprint, branch bias, dependence depth, divide frequency)
// for "what would my code need?" register-file studies.
type SyntheticParams = workload.SyntheticParams

// Synthetic generates a program with the requested dynamic character.
func Synthetic(p SyntheticParams) (*Program, error) { return workload.Synthetic(p) }

// RandomProgram generates a terminating random structured program
// (deterministic per seed); it exercises every instruction class and is
// intended for differential testing against the reference interpreter.
func RandomProgram(seed int64) *Program { return workload.RandomProgram(seed) }

// TimingParams holds the multiported register-file timing model's technology
// constants (paper §3.4, Figures 9–10).
type TimingParams = rftiming.Params

// TimingPorts describes a register file's port configuration.
type TimingPorts = rftiming.Ports

// DefaultTimingParams returns the calibrated 0.5µm CMOS parameter set.
func DefaultTimingParams() TimingParams { return rftiming.Default05um() }

// PortsForWidth returns the paper's port provisioning: 2×width read ports
// and width write ports for the integer file, half of each for the
// floating-point file.
func PortsForWidth(width int, fpFile bool) TimingPorts { return rftiming.PortsFor(width, fpFile) }

// BIPS converts a commit IPC and a machine cycle time in nanoseconds into
// billions of instructions per second (the paper's Figure 10 metric).
func BIPS(commitIPC, cycleNS float64) float64 { return rftiming.BIPS(commitIPC, cycleNS) }

// Suite runs the paper's experiments (Table 1, Figures 3–8 and 10, plus the
// ablation studies) on the parallel sweep engine: every spec simulates at
// most once, figure matrices prefetch across Suite.Jobs workers, and an
// optional persistent result cache (Suite.Cache) makes repeat sweeps
// near-instant. See the methods on the aliased type.
type Suite = exper.Suite

// NewSuite returns an experiment suite with the given per-run commit budget
// (the paper ran 23M–910M instructions per benchmark; a few hundred thousand
// reproduce the trends for the synthetic stand-ins).
func NewSuite(budget int64) *Suite { return exper.NewSuite(budget) }

// SweepSpec identifies one simulation run in an experiment sweep: the
// benchmark and the machine-configuration axes of the paper.
type SweepSpec = exper.Spec

// ResultCache is the sweep subsystem's persistent, content-addressed
// on-disk result store. Entries are keyed by a fingerprint of the spec, its
// commit budget, and the simulator/workload version strings; writes are
// atomic and corrupt entries are re-simulated, never fatal. A ResultCache
// is safe for concurrent use, including by multiple processes sharing one
// directory.
type ResultCache = rescache.Store

// OpenResultCache creates (if needed) and validates a result-cache
// directory; attach the store to Suite.Cache.
func OpenResultCache(dir string) (*ResultCache, error) { return rescache.Open(dir) }

// SweepStats is the observability snapshot of one experiment sweep —
// scheduler executions, memo/dedup counters, and persistent-cache
// hit/miss/error counts — returned by Suite.SweepStats.
type SweepStats = telemetry.SweepStats

// Client is the typed client for a regsimd serving instance (cmd/regsimd):
// simulate single specs, run sweep matrices, list workloads, evaluate the
// cycle-time model, and read live metrics over JSON/HTTP. Server refusals
// come back as *APIError values carrying the structured code and backoff
// hint.
type Client = server.Client

// NewClient returns a client for a serving instance, e.g.
// NewClient("http://localhost:8265").
func NewClient(baseURL string) *Client { return server.NewClient(baseURL) }

// APIError is the structured error a serving instance returns for every
// non-2xx response; branch on its Code and IsRetryable rather than the
// message text.
type APIError = server.APIError

// Server is the embeddable HTTP serving layer behind cmd/regsimd —
// bounded admission, request coalescing through the sweep engine,
// per-request deadlines, and live metrics. Mount Handler() anywhere an
// http.Handler goes.
type Server = server.Server

// ServerConfig configures NewServer; only Suite is required.
type ServerConfig = server.Config

// NewServer builds a serving layer over an experiment suite.
func NewServer(cfg ServerConfig) (*Server, error) { return server.New(cfg) }

// ClusterRouter is the embeddable cluster frontend behind cmd/regsim-router:
// cache-affinity (rendezvous-hash) routing of simulate and sweep traffic
// over a pool of serving instances, with health probing, saturation-aware
// spillover, and retry-with-reroute failover. It serves the same wire
// surface as a single server, so a Client points at either interchangeably.
type ClusterRouter = cluster.Router

// ClusterConfig configures NewClusterRouter; Workers (or AllowRegister) is
// required, and DefaultBudget must match the workers' commit budget so
// routing keys equal cache keys.
type ClusterConfig = cluster.Config

// NewClusterRouter builds a cluster frontend over a worker pool.
func NewClusterRouter(cfg ClusterConfig) (*ClusterRouter, error) { return cluster.New(cfg) }

// Twin is the analytical fast path: a closed-form IPC/BIPS estimator
// calibrated against a handful of anchor simulations per (benchmark, width)
// pair and memoized thereafter. A warm estimate costs microseconds where a
// simulation costs seconds, which is what makes twin-guided sweep pruning
// (Suite.Fig10Pruned) and the POST /v1/estimate endpoint viable. Error bounds
// are enforced per spec family by verify.TwinBounds.
type Twin = twin.Model

// NewTwin builds an analytical twin over a suite; calibration simulations go
// through the suite's sweep engine and share its memoization and result
// cache.
func NewTwin(s *Suite) *Twin { return twin.New(s) }

// TwinEstimate is one closed-form prediction: cycles, IPC, the int-register
// cycle time, BIPS, and the model's own error bounds for the spec's family.
type TwinEstimate = twin.Estimate

// ParseAsm assembles textual assembly (the isa.Disasm syntax plus labels and
// .entry/.word/.float directives; see internal/asm) into a runnable program.
func ParseAsm(name, src string) (*Program, error) { return asm.Parse(name, src) }

// Event is one pipeline transition delivered to Config.Tracer.
type Event = core.Event

// TraceRecorder collects pipeline events and renders D/I/C/R pipeline
// diagrams; install its Hook as Config.Tracer.
type TraceRecorder = trace.Recorder

// NewTraceRecorder returns a recorder for up to limit instructions
// (0 = unlimited).
func NewTraceRecorder(limit int) *TraceRecorder { return trace.NewRecorder(limit) }

// Telemetry collects one run's observability data: top-down cycle accounting
// and per-instruction stage-latency histograms. Attach a fresh instance to
// Config.Telemetry before Run and read it afterwards; the machine verifies
// at the end of the run that the accounting buckets sum exactly to the run's
// cycle count.
type Telemetry = telemetry.Telemetry

// NewTelemetry returns an empty telemetry sink.
func NewTelemetry() *Telemetry { return telemetry.New() }

// CycleAccount is the top-down cycle-accounting tally: every simulated cycle
// attributed to exactly one CycleBucket.
type CycleAccount = telemetry.CycleAccount

// CycleBucket is one cycle-accounting category.
type CycleBucket = telemetry.Bucket

// Cycle-accounting buckets, in pipeline order from healthy retirement to
// front-end starvation. See the telemetry package for the attribution rules.
const (
	CycleCommitFull    = telemetry.BucketCommitFull
	CycleCommitPartial = telemetry.BucketCommitPartial
	CycleQueueFull     = telemetry.BucketQueueFull
	CycleNoFreeReg     = telemetry.BucketNoFreeReg
	CycleICacheMiss    = telemetry.BucketICacheMiss
	CycleRecovery      = telemetry.BucketRecovery
	CycleDCacheMiss    = telemetry.BucketDCacheMiss
	CycleWriteBuffer   = telemetry.BucketWriteBuffer
	CycleOther         = telemetry.BucketOther
)

// LatencyHistogram is a log2-bucketed latency histogram with exact counts
// below 128 cycles and P50/P90/P99 helpers.
type LatencyHistogram = telemetry.Histogram

// RunProgress is one heartbeat of a running simulation, delivered to
// Config.Progress (or Suite.Heartbeat) every Config.ProgressEvery cycles.
type RunProgress = telemetry.Progress

// CounterSample is one periodic structural-occupancy sample (dispatch-queue
// entries, free registers) delivered to Config.CounterSampler; it feeds the
// Chrome-trace exporter's counter tracks.
type CounterSample = core.CounterSample

// ChromeTracer converts the Config.Tracer event stream into a Chrome
// trace-event (Perfetto) JSON file: per-stage slice tracks plus counter
// tracks, loadable at ui.perfetto.dev or chrome://tracing.
type ChromeTracer = trace.ChromeTracer

// ChromeTraceOptions bounds a Chrome-trace capture (cycle window and
// instruction cap) so multi-million-cycle runs stay within a size budget.
type ChromeTraceOptions = trace.ChromeOptions

// NewChromeTracer returns a Chrome-trace capture; install its Hook as
// Config.Tracer and its CounterHook as Config.CounterSampler.
func NewChromeTracer(opts ChromeTraceOptions) *ChromeTracer { return trace.NewChromeTracer(opts) }

// Span is one timed phase of a traced request (or CLI run). Spans form a
// tree per trace plus cross-trace links; every method is a no-op on a nil
// receiver, so instrumented code needs no enabled/disabled branches.
type Span = obs.Span

// SpanData is the plain-data snapshot of a span tree: what the serving
// layer's /debug/obs endpoint returns, what slow-request logs inline, and
// what ChromeTracer.AttachSpans renders onto the Perfetto timeline.
type SpanData = obs.SpanData

// StartTrace begins a new trace: a fresh random trace ID and a root span,
// installed as the context's active span. End the returned span, then
// snapshot it with its Snapshot method.
func StartTrace(ctx context.Context, name string) (*Span, context.Context) {
	return obs.StartTrace(ctx, name)
}

// StartSpan begins a child of the context's active span. On an untraced
// context it returns (nil, ctx) — the disabled path costs one context
// lookup.
func StartSpan(ctx context.Context, name string) (*Span, context.Context) {
	return obs.StartSpan(ctx, name)
}

// SpanFromContext returns the context's active span, or nil when untraced.
func SpanFromContext(ctx context.Context) *Span { return obs.FromContext(ctx) }

// MetricsRegistry is the serving layer's hand-rolled Prometheus-style metric
// registry (counters, gauges, histograms; text exposition via
// WritePrometheus). Pass one in ServerConfig.Registry to add your own
// families to the server's /metrics?format=prometheus page, or read the
// server's own via Server.Registry.
type MetricsRegistry = obs.Registry

// NewMetricsRegistry returns an empty metric registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// Verify runs the differential oracle: it simulates p under cfg and checks
// the committed instruction stream (count and checksum), the final
// architectural register files, the final memory image, and the rename
// unit's structural invariants against the functional reference interpreter.
// A budget of 0 means run to halt. The returned error is a
// *VerifyMismatchError for oracle divergence or a *MachineInvariantError
// when cfg.CheckInvariants caught corruption mid-run. See VERIFY.md for the
// oracle contract.
func Verify(cfg Config, p *Program, budget int64) error {
	return verify.Differential(cfg, p, verify.Options{Budget: budget})
}

// VerifyCheckpoint runs the checkpoint round-trip leg of the verification
// subsystem: p under cfg is simulated cold to budget and again by
// snapshotting a warm-up prefix, serializing the snapshot through its
// on-disk JSON form, resuming, and finishing — and the two Results must be
// byte-identical under the canonical encoding the persistent caches store.
// warm is the snapshot point in committed instructions; values outside
// (0, budget) default to budget/2. The returned error is a
// *VerifyMismatchError with Field "checkpoint" on drift.
func VerifyCheckpoint(cfg Config, p *Program, budget, warm int64) error {
	return verify.CheckpointRoundTrip(cfg, p, budget, warm)
}

// CheckpointStore holds architectural checkpoints (mid-run machine
// snapshots and finished results) shared across the runs of a sweep, so
// configurations differing only in late-binding dimensions fast-forward
// over a common warm-up prefix instead of re-simulating it. Attach one to
// Suite.Checkpoints; results are bit-identical with or without it.
type CheckpointStore = ckpt.Store

// NewCheckpointStore returns a memory-only checkpoint store (checkpoints
// live for the process; nothing is persisted).
func NewCheckpointStore() *CheckpointStore { return ckpt.NewStore() }

// OpenCheckpointStore opens (creating if needed) a checkpoint store backed
// by dir, so warm-up fast-forwarding also works across processes.
func OpenCheckpointStore(dir string) (*CheckpointStore, error) { return ckpt.OpenStore(dir) }

// VerifyMismatchError reports which architectural field diverged from the
// reference interpreter.
type VerifyMismatchError = verify.MismatchError

// MachineInvariantError reports a microarchitectural invariant violation
// (free-list conservation, in-order commit, occupancy bounds, rename-state
// audit) caught by the runtime checker enabled with Config.CheckInvariants.
type MachineInvariantError = core.InvariantError
