package regsim_test

import (
	"fmt"
	"log"

	"regsim"
)

// ExampleRun assembles a small program and runs it on the paper's baseline
// machine; architectural results are identical on every configuration.
func ExampleRun() {
	prog, err := regsim.ParseAsm("sum", `
		    add r1, r31, 0      ; acc
		    add r2, r31, 100    ; i
		loop:
		    add r1, r1, r2
		    sub r2, r2, 1
		    bne r2, loop
		    add r3, r31, 0x100000
		    st  r1, 0(r3)
		    halt
	`)
	if err != nil {
		log.Fatal(err)
	}
	res, err := regsim.Run(regsim.DefaultConfig(), prog, 1<<20)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("halted:", res.Halted)
	fmt.Println("committed:", res.Committed)
	// Output:
	// halted: true
	// committed: 305
}

// ExampleWorkloads lists the paper's Table 1 benchmarks.
func ExampleWorkloads() {
	for _, name := range regsim.Workloads() {
		fmt.Println(name)
	}
	// Output:
	// compress
	// doduc
	// espresso
	// gcc1
	// mdljdp2
	// mdljsp2
	// ora
	// su2cor
	// tomcatv
}

// ExamplePortsForWidth shows the paper's register-file port provisioning.
func ExamplePortsForWidth() {
	intPorts := regsim.PortsForWidth(4, false)
	fpPorts := regsim.PortsForWidth(4, true)
	fmt.Printf("4-way integer file: %dR/%dW\n", intPorts.Read, intPorts.Write)
	fmt.Printf("4-way FP file:      %dR/%dW\n", fpPorts.Read, fpPorts.Write)
	// Output:
	// 4-way integer file: 8R/4W
	// 4-way FP file:      4R/2W
}

// ExampleTimingParams demonstrates the paper's central timing asymmetry:
// doubling the ports costs more than doubling the registers.
func ExampleTimingParams() {
	p := regsim.DefaultTimingParams()
	base := p.CycleTime(80, regsim.PortsForWidth(4, false))
	moreRegs := p.CycleTime(160, regsim.PortsForWidth(4, false))
	morePorts := p.CycleTime(80, regsim.PortsForWidth(8, false))
	fmt.Println("doubling registers slower:", moreRegs > base)
	fmt.Println("doubling ports slower:", morePorts > base)
	fmt.Println("ports cost more than registers:", morePorts-base > moreRegs-base)
	// Output:
	// doubling registers slower: true
	// doubling ports slower: true
	// ports cost more than registers: true
}

// ExampleNewTraceRecorder attaches the pipeline tracer to a run.
func ExampleNewTraceRecorder() {
	prog, _ := regsim.ParseAsm("tiny", "add r1, r31, 1\nadd r2, r1, 2\nhalt\n")
	rec := regsim.NewTraceRecorder(0)
	cfg := regsim.DefaultConfig()
	cfg.Tracer = rec.Hook()
	if _, err := regsim.Run(cfg, prog, 1<<20); err != nil {
		log.Fatal(err)
	}
	fmt.Println("instructions traced:", len(rec.Records()))
	fmt.Println("invariants:", rec.CheckInvariants())
	// Output:
	// instructions traced: 3
	// invariants: <nil>
}

// ExampleNewSuite runs the Table 1 experiment at a tiny budget.
func ExampleNewSuite() {
	s := regsim.NewSuite(1_000)
	table, err := s.Table1()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("rows:", len(table.Rows))
	// Output:
	// rows: 18
}
